module Frames = Journal.Frames

let magic = "SITREPL1"

(* A truncated log persists its base as a special first record.  Data
   frames are canonical JSON request lines (they start with '{'), so a
   "base N" payload can never be mistaken for one. *)
let base_header b = Printf.sprintf "base %d" b

let parse_base_header p =
  if String.length p > 5 && String.sub p 0 5 = "base " then
    int_of_string_opt (String.sub p 5 (String.length p - 5))
  else None

type t = {
  mu : Mutex.t;
  mutable base : int;  (* seqs [1..base] are compacted away *)
  mutable frames : string array;  (* seq s lives at index s - base - 1 *)
  mutable len : int;  (* live frames; highest seq is base + len *)
  mutable file : Frames.t option;
  mutable closed : bool;
  truncated : int;
  liveness_s : float;
  acks : (string, int * float) Hashtbl.t;
      (* node id -> (highest applied seq, last seen) *)
}

let create ?persist ?(liveness_s = 30.) () =
  let payloads, truncated, file =
    match persist with
    | None -> ([], 0, None)
    | Some path ->
        (* fsync every record: an acknowledged write must be on disk *)
        let recovery, f = Frames.open_ ~fsync:Frames.Always ~magic path in
        (recovery.Frames.payloads, recovery.Frames.truncated_bytes, Some f)
  in
  let base, payloads =
    match payloads with
    | p :: rest -> (
        match parse_base_header p with
        | Some b -> (b, rest)
        | None -> (0, payloads))
    | [] -> (0, [])
  in
  let len = List.length payloads in
  let frames = Array.make (max 64 len) "" in
  List.iteri (fun i p -> frames.(i) <- p) payloads;
  {
    mu = Mutex.create ();
    base;
    frames;
    len;
    file;
    closed = false;
    truncated;
    liveness_s = Float.max 0.001 liveness_s;
    acks = Hashtbl.create 8;
  }

let truncated_bytes t = t.truncated
let seq t = Mutex.protect t.mu (fun () -> t.base + t.len)
let base_seq t = Mutex.protect t.mu (fun () -> t.base)

let append t frame =
  Mutex.protect t.mu (fun () ->
      if t.closed then invalid_arg "Replicate.Log.append: log is closed";
      if t.len = Array.length t.frames then begin
        let bigger = Array.make (2 * Array.length t.frames) "" in
        Array.blit t.frames 0 bigger 0 t.len;
        t.frames <- bigger
      end;
      (* disk first: a crash between the two leaves the frame
         recoverable, never acknowledged-but-lost *)
      (match t.file with Some f -> Frames.append f frame | None -> ());
      t.frames.(t.len) <- frame;
      t.len <- t.len + 1;
      t.base + t.len)

let get t s =
  Mutex.protect t.mu (fun () ->
      if s > t.base && s <= t.base + t.len then Some t.frames.(s - t.base - 1)
      else None)

let from t s ~max:m =
  Mutex.protect t.mu (fun () ->
      let lo = max (t.base + 1) s in
      let hi = min (t.base + t.len) (lo + max 0 m - 1) in
      if hi < lo then []
      else
        List.init (hi - lo + 1) (fun i ->
            (lo + i, t.frames.(lo + i - t.base - 1))))

(* Waiters poll under a small sleep instead of a condition variable:
   the stdlib [Condition] has no timed wait, and a few milliseconds of
   granularity is far below every timeout used here. *)
let poll_until ~timeout_s f =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec loop () =
    match f () with
    | Some v -> v
    | None ->
        if Unix.gettimeofday () >= deadline then false
        else begin
          Thread.delay 0.003;
          loop ()
        end
  in
  loop ()

let wait t ~from ~timeout_s =
  poll_until ~timeout_s (fun () ->
      Mutex.protect t.mu (fun () ->
          if t.base + t.len >= from then Some true
          else if t.closed then Some false
          else None))

(* ---- acks ----------------------------------------------------------
   Keyed by the follower-generated node id it sends in repl_handshake —
   NOT by anything the transport implies — and expired after
   [liveness_s] without a pull, so a restarted or vanished follower
   can neither double-count toward a quorum nor pin the truncation
   point (or the repl_status listing) forever. *)

let prune_locked t =
  let now = Unix.gettimeofday () in
  let dead =
    Hashtbl.fold
      (fun node (_, seen) acc ->
        if now -. seen > t.liveness_s then node :: acc else acc)
      t.acks []
  in
  List.iter (Hashtbl.remove t.acks) dead

let ack t ~node s =
  Mutex.protect t.mu (fun () ->
      prune_locked t;
      let now = Unix.gettimeofday () in
      let prev =
        match Hashtbl.find_opt t.acks node with Some (p, _) -> p | None -> 0
      in
      Hashtbl.replace t.acks node (max prev s, now))

let acks t =
  Mutex.protect t.mu (fun () ->
      prune_locked t;
      Hashtbl.fold (fun n (s, _) acc -> (n, s) :: acc) t.acks []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let acked_by t s =
  Mutex.protect t.mu (fun () ->
      prune_locked t;
      Hashtbl.fold
        (fun _ (applied, _) n -> if applied >= s then n + 1 else n)
        t.acks 0)

let lowest_live_ack t =
  Mutex.protect t.mu (fun () ->
      prune_locked t;
      Hashtbl.fold
        (fun _ (applied, _) acc ->
          match acc with
          | None -> Some applied
          | Some lo -> Some (min lo applied))
        t.acks None)

let wait_acked t ~seq ~replicas ~timeout_s =
  if replicas <= 0 then true
  else
    poll_until ~timeout_s (fun () ->
        Mutex.protect t.mu (fun () ->
            prune_locked t;
            let n =
              Hashtbl.fold
                (fun _ (applied, _) n -> if applied >= seq then n + 1 else n)
                t.acks 0
            in
            if n >= replicas then Some true
            else if t.closed then Some false
            else None))

(* ---- compaction ---------------------------------------------------- *)

let truncate t upto =
  Mutex.protect t.mu (fun () ->
      let bound = min upto (t.base + t.len) in
      if bound <= t.base then 0
      else begin
        let dropped = bound - t.base in
        let remaining = t.len - dropped in
        let frames = Array.make (max 64 remaining) "" in
        Array.blit t.frames dropped frames 0 remaining;
        t.frames <- frames;
        t.len <- remaining;
        t.base <- bound;
        (* the on-disk prefix goes with it, atomically (tmp + rename),
           with the new base recorded as the leading header record *)
        (match t.file with
        | Some f ->
            Frames.rewrite f
              (base_header bound :: Array.to_list (Array.sub frames 0 remaining))
        | None -> ());
        dropped
      end)

let close t =
  Mutex.protect t.mu (fun () ->
      if not t.closed then begin
        t.closed <- true;
        match t.file with
        | Some f ->
            (try Frames.close f with Sys_error _ -> ());
            t.file <- None
        | None -> ()
      end)
