(** The replication log: a seq-numbered, thread-safe, append-only list
    of opaque frames (canonical JSON request lines on the leader).

    Seq numbers are 1-based and dense — frame [s] is the [s]-th
    successful mutation since the log began.  A leader appends every
    mutation it acknowledges; followers pull ranges by seq and record
    how far they have applied ({!ack}), which is what the semi-sync
    write path ({!wait_acked}) and `repl_status` report on.

    When given a [persist] path the log is backed by a
    {!Journal.Frames} file (CRC-framed records, longest-valid-prefix
    recovery), so a restarted leader recovers exactly the acknowledged
    prefix — a torn tail from a mid-append crash is truncated, never
    fatal — and can replay it into its own state before serving.

    The log is {e uncompacted by design}: the full history is the
    bootstrap snapshot a new follower (and a restarted leader) replays
    from seq 1, so memory, disk and restart time grow with the total
    write count, not with live state.  The bound and its operational
    mitigation are documented in docs/ROBUSTNESS.md ("Log growth");
    snapshot + prefix truncation is a ROADMAP item. *)

type t

val magic : string
(** The frames-file magic ("SITREPL1"). *)

val create : ?persist:string -> unit -> t
(** In-memory log; with [~persist:path] it is recovered from and
    appended to [path] ({!Journal.Frames}, fsync every append — a
    frame must be on disk before the write it records is
    acknowledged). *)

val truncated_bytes : t -> int
(** Torn/corrupt tail bytes discarded by recovery (0 without
    [persist], 0 for a clean file). *)

val seq : t -> int
(** Highest assigned seq (0 when empty). *)

val append : t -> string -> int
(** Appends one frame, returns its seq.  Raises [Invalid_argument]
    after {!close}. *)

val get : t -> int -> string option
(** Frame by seq; [None] outside [1..seq t]. *)

val from : t -> int -> max:int -> (int * string) list
(** Up to [max] frames starting at the given seq, in order. *)

val wait : t -> from:int -> timeout_s:float -> bool
(** Blocks until [seq t >= from] (true), or the timeout elapses or the
    log is closed (false) — the long-poll behind `repl_pull`'s
    [wait_ms].  Polling granularity is a few milliseconds. *)

val ack : t -> node:string -> int -> unit
(** Records that [node] has applied every frame up to the given seq.
    Monotonic per node; seq 0 just registers the node. *)

val acks : t -> (string * int) list
(** Every known node and its highest acked seq, sorted by node. *)

val acked_by : t -> int -> int
(** How many nodes have acked at least the given seq. *)

val wait_acked : t -> seq:int -> replicas:int -> timeout_s:float -> bool
(** Blocks until [replicas] nodes have acked [seq] (true) or the
    timeout elapses or the log is closed (false).  Immediately true
    when [replicas <= 0]. *)

val close : t -> unit
(** Closes the backing file (if any) and wakes every waiter.
    Idempotent. *)
