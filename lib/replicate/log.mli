(** The replication log: a seq-numbered, thread-safe list of opaque
    frames (canonical JSON request lines on the leader), compacted by
    prefix truncation.

    Seq numbers are 1-based and dense — frame [s] is the [s]-th
    successful mutation since the log began.  A leader appends every
    mutation it acknowledges; followers pull ranges by seq and record
    how far they have applied ({!ack}), which is what the semi-sync
    write path ({!wait_acked}) and `repl_status` report on.

    The log holds only the suffix after {!base_seq}: {!truncate} drops
    an already-snapshotted prefix from memory and disk, so leader
    memory, disk and restart time are bounded by the compaction window,
    not by the total write count (docs/ROBUSTNESS.md "Log growth").
    Frames at or below [base_seq] are gone — a follower that far behind
    must install a {!Snapshot} and resume from its seq.

    When given a [persist] path the log is backed by a
    {!Journal.Frames} file (CRC-framed records, longest-valid-prefix
    recovery; after a truncation the file leads with a ["base N"]
    header record), so a restarted leader recovers exactly the
    acknowledged suffix — a torn tail from a mid-append crash is
    truncated, never fatal.

    Acks are keyed by the stable node id a follower generates and sends
    in `repl_handshake` — never by transport details like its ephemeral
    address — and expire after [liveness_s] without a pull, so a
    restarted follower cannot register twice and double-count toward an
    `--ack-replicas` quorum, and a vanished one cannot pin
    `repl_status` or the truncation point forever. *)

type t

val magic : string
(** The frames-file magic ("SITREPL1"). *)

val create : ?persist:string -> ?liveness_s:float -> unit -> t
(** In-memory log; with [~persist:path] it is recovered from and
    appended to [path] ({!Journal.Frames}, fsync every append — a
    frame must be on disk before the write it records is
    acknowledged).  [liveness_s] (default 30) is the ack-expiry
    window. *)

val truncated_bytes : t -> int
(** Torn/corrupt tail bytes discarded by recovery (0 without
    [persist], 0 for a clean file). *)

val seq : t -> int
(** Highest assigned seq (0 when empty). *)

val base_seq : t -> int
(** Highest truncated-away seq: frames [base_seq+1 .. seq] are held, a
    request at or below [base_seq] needs a snapshot.  0 until the
    first {!truncate}. *)

val append : t -> string -> int
(** Appends one frame, returns its seq.  Raises [Invalid_argument]
    after {!close}. *)

val get : t -> int -> string option
(** Frame by seq; [None] outside [base_seq+1 .. seq]. *)

val from : t -> int -> max:int -> (int * string) list
(** Up to [max] frames starting at the given seq (clamped to
    [base_seq+1]), in order. *)

val wait : t -> from:int -> timeout_s:float -> bool
(** Blocks until [seq t >= from] (true), or the timeout elapses or the
    log is closed (false) — the long-poll behind `repl_pull`'s
    [wait_ms].  Polling granularity is a few milliseconds. *)

val truncate : t -> int -> int
(** [truncate t upto] drops every frame at or below [upto] (clamped to
    [seq t]) from memory and, when persisted, atomically from disk;
    returns how many frames were dropped (0 when [upto <= base_seq]).
    Callers bound [upto] by their snapshot coverage and
    {!lowest_live_ack} so no live follower loses its tail. *)

val ack : t -> node:string -> int -> unit
(** Records that [node] has applied every frame up to the given seq,
    and refreshes its liveness.  Monotonic per node; seq 0 just
    registers (or keeps alive) the node. *)

val acks : t -> (string * int) list
(** Every live node and its highest acked seq, sorted by node.  Nodes
    past the liveness window are pruned, not listed. *)

val acked_by : t -> int -> int
(** How many live nodes have acked at least the given seq. *)

val lowest_live_ack : t -> int option
(** The smallest ack among live registered nodes ([None] when no
    follower is registered) — the truncation safety bound. *)

val wait_acked : t -> seq:int -> replicas:int -> timeout_s:float -> bool
(** Blocks until [replicas] live nodes have acked [seq] (true) or the
    timeout elapses or the log is closed (false).  Immediately true
    when [replicas <= 0]. *)

val close : t -> unit
(** Closes the backing file (if any) and wakes every waiter.
    Idempotent. *)
