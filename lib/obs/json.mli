(** A minimal JSON tree, printer and parser.

    The observability layer emits machine-readable reports
    ({!Report.to_string}) and the test suite parses them back; neither
    side needs more than this.  The module is deliberately tiny — no
    streaming, no number-precision games — and self-contained so that
    [obs] adds no third-party dependency to the build.

    Printing is deterministic: object fields are emitted in the order
    given, floats with ["%.9g"], and strings with the escapes required
    by RFC 8259.  [of_string] accepts any document this module prints
    (and standard JSON generally, including [\uXXXX] escapes). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** field order is preserved *)

val to_string : ?indent:int -> t -> string
(** [to_string v] prints [v] on one line; [~indent:n] pretty-prints
    with [n]-space indentation steps. *)

val pp : Format.formatter -> t -> unit
(** One-line printing, same output as {!to_string}. *)

val of_string : string -> (t, string) result
(** Parses a complete JSON document; the error string carries a byte
    offset.  Numbers without [.], [e] or [E] parse as {!Int}, all
    others as {!Float}. *)

val member : string -> t -> t option
(** [member k v] is the field [k] of object [v]; [None] when [v] is not
    an object or lacks the field. *)

val find : string list -> t -> t option
(** [find path v] chains {!member} through nested objects. *)
