type node = {
  name : string;
  mutable count : int;
  mutable total : float;
  children : (string, node) Hashtbl.t;
}

let fresh name = { name; count = 0; total = 0.0; children = Hashtbl.create 4 }

(* [root] is a synthetic node whose children are the top-level spans;
   [stack] is the ancestry of the currently running span, innermost
   first. *)
let root = fresh "<root>"
let stack : node list ref = ref []

let child_of parent name =
  match Hashtbl.find_opt parent.children name with
  | Some n -> n
  | None ->
      let n = fresh name in
      Hashtbl.add parent.children name n;
      n

let run name f =
  if not !Runtime.enabled then f ()
  else begin
    let parent = match !stack with n :: _ -> n | [] -> root in
    let node = child_of parent name in
    stack := node :: !stack;
    let t0 = Runtime.now () in
    Fun.protect
      ~finally:(fun () ->
        node.count <- node.count + 1;
        node.total <- node.total +. (Runtime.now () -. t0);
        match !stack with _ :: rest -> stack := rest | [] -> ())
      f
  end

type snapshot = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  children : snapshot list;
}

let rec snapshot_of (node : node) =
  let children =
    Hashtbl.fold (fun _ c acc -> snapshot_of c :: acc) node.children []
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  let child_total = List.fold_left (fun acc c -> acc +. c.total_s) 0.0 children in
  {
    name = node.name;
    count = node.count;
    total_s = node.total;
    self_s = Float.max 0.0 (node.total -. child_total);
    children;
  }

let roots () = (snapshot_of root).children

let reset () =
  Hashtbl.reset root.children;
  stack := []
