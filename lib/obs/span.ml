type node = {
  name : string;
  mutable count : int;
  mutable total : float;
  children : (string, node) Hashtbl.t;
}

let fresh name = { name; count = 0; total = 0.0; children = Hashtbl.create 4 }

(* [root] is a synthetic node whose children are the top-level spans;
   [stack] is the ancestry of the currently running span, innermost
   first.  The stack is domain-local so a lib/par worker building spans
   concurrently cannot corrupt the caller's ambient ancestry: spans
   entered on a worker domain start a fresh ancestry and land at the
   root level.  The tree itself is shared; all mutation of it happens
   under [tree_mutex] (entry and exit of a span — the timed section in
   between runs unlocked). *)
let root = fresh "<root>"
let tree_mutex = Mutex.create ()

let stack_key : node list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let child_of parent name =
  match Hashtbl.find_opt parent.children name with
  | Some n -> n
  | None ->
      let n = fresh name in
      Hashtbl.add parent.children name n;
      n

let run name f =
  if not !Runtime.enabled then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with n :: _ -> n | [] -> root in
    let node = Mutex.protect tree_mutex (fun () -> child_of parent name) in
    stack := node :: !stack;
    let t0 = Runtime.now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Runtime.now () -. t0 in
        Mutex.protect tree_mutex (fun () ->
            node.count <- node.count + 1;
            node.total <- node.total +. dt);
        match !stack with _ :: rest -> stack := rest | [] -> ())
      f
  end

type snapshot = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  children : snapshot list;
}

let rec snapshot_of (node : node) =
  let children =
    Hashtbl.fold (fun _ c acc -> snapshot_of c :: acc) node.children []
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  let child_total = List.fold_left (fun acc c -> acc +. c.total_s) 0.0 children in
  {
    name = node.name;
    count = node.count;
    total_s = node.total;
    self_s = Float.max 0.0 (node.total -. child_total);
    children;
  }

let roots () = (snapshot_of root).children

let reset () =
  Mutex.protect tree_mutex (fun () -> Hashtbl.reset root.children);
  Domain.DLS.get stack_key := []
