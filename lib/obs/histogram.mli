(** Named histograms over non-negative floats (typically latencies in
    seconds), with approximate quantiles.

    Observations land in geometric buckets — four per octave starting at
    one nanosecond — so a quantile estimate carries at most ~19%
    relative error while the histogram itself is a fixed 240-slot array:
    no allocation per observation, no unbounded sample buffer.  Exact
    [count], [sum], [min] and [max] are tracked on the side.

    Like {!Counter}, histograms are process-global, keyed by name, and
    inert while the layer is disabled. *)

type t

val make : string -> t
(** [make name] registers (or retrieves) the histogram [name].
    Conventional name shape: ["layer.quantity_unit"], e.g.
    ["query.eval_seconds"]. *)

val name : t -> string

val observe : t -> float -> unit
(** Records one observation when the layer is enabled; no-op otherwise.
    Negative values are clamped to the lowest bucket (min/max still see
    the raw value). *)

val time : t -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] and observes its wall-clock duration in
    seconds — also on the exceptional path.  When the layer is disabled
    this is exactly [f ()]. *)

val count : t -> int

val sum : t -> float

val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [0..1] estimates the value below which a
    [q] fraction of observations fall (geometric midpoint of the bucket
    holding the rank); [nan] when empty. *)

val all : unit -> t list
(** Every registered histogram, sorted by name. *)

val reset_all : unit -> unit
(** Empties every histogram (registrations are kept). *)
