(* Buckets are geometric with ratio 2^(1/4) starting at [base] = 1 ns:
   bucket i covers [base * 2^(i/4), base * 2^((i+1)/4)).  240 buckets
   reach base * 2^60 ≈ 1.15e9 seconds, far past any latency we time. *)

let base = 1e-9
let buckets_per_octave = 4.0
let bucket_count = 240

type t = {
  name : string;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  buckets : int array;
  lock : Mutex.t;  (** serialises [observe] across domains *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let make name =
  Mutex.protect registry_mutex @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some h -> h
  | None ->
      let h =
        {
          name;
          count = 0;
          sum = 0.0;
          vmin = infinity;
          vmax = neg_infinity;
          buckets = Array.make bucket_count 0;
          lock = Mutex.create ();
        }
      in
      Hashtbl.add registry name h;
      h

let name h = h.name

let bucket_of v =
  if v <= base then 0
  else
    let i =
      int_of_float (buckets_per_octave *. (Float.log v -. Float.log base) /. Float.log 2.0)
    in
    if i < 0 then 0 else if i >= bucket_count then bucket_count - 1 else i

(* Geometric midpoint of bucket [i] — the value reported for quantiles. *)
let bucket_mid i =
  base *. Float.pow 2.0 ((float_of_int i +. 0.5) /. buckets_per_octave)

let observe h v =
  if !Runtime.enabled then
    Mutex.protect h.lock @@ fun () ->
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v;
    let i = bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1

let time h f =
  if not !Runtime.enabled then f ()
  else begin
    let t0 = Runtime.now () in
    Fun.protect ~finally:(fun () -> observe h (Runtime.now () -. t0)) f
  end

let count h = h.count
let sum h = h.sum
let mean h = if h.count = 0 then nan else h.sum /. float_of_int h.count
let min_value h = if h.count = 0 then nan else h.vmin
let max_value h = if h.count = 0 then nan else h.vmax

let quantile h q =
  if h.count = 0 then nan
  else begin
    let rank = q *. float_of_int h.count in
    let rec walk i seen =
      if i >= bucket_count then max_value h
      else
        let seen = seen + h.buckets.(i) in
        if float_of_int seen >= rank then bucket_mid i else walk (i + 1) seen
    in
    walk 0 0
  end

let all () =
  Mutex.protect registry_mutex @@ fun () ->
  Hashtbl.fold (fun _ h acc -> h :: acc) registry []
  |> List.sort (fun a b -> String.compare a.name b.name)

let reset_all () =
  Mutex.protect registry_mutex @@ fun () ->
  Hashtbl.iter
    (fun _ h ->
      Mutex.protect h.lock @@ fun () ->
      h.count <- 0;
      h.sum <- 0.0;
      h.vmin <- infinity;
      h.vmax <- neg_infinity;
      Array.fill h.buckets 0 bucket_count 0)
    registry
