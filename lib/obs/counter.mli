(** Named monotonic counters.

    A counter is created once (typically at module initialisation of the
    instrumented code) and incremented on the hot path.  Increments are
    dropped while the layer is disabled ({!Obs.enable}), so
    instrumentation left in place costs one branch when off.

    Counters are process-global and keyed by name: [make] called twice
    with the same name returns the same counter, which lets independent
    modules contribute to one total.  Increments are atomic, so counts
    from [lib/par] worker domains are never lost — the totals for a
    fixed amount of work are identical whatever the worker count (the
    property the parallel==sequential differential tests pin). *)

type t

val make : string -> t
(** [make name] registers (or retrieves) the counter [name].  The
    conventional name shape is ["layer.event"], e.g.
    ["similarity.pairs_compared"]. *)

val name : t -> string

val incr : t -> unit
(** Adds 1 when the layer is enabled; no-op otherwise. *)

val add : t -> int -> unit
(** Adds [n] when the layer is enabled; no-op otherwise. *)

val value : t -> int
(** Current value (0 after {!reset_all} or before any increment). *)

val all : unit -> (string * int) list
(** Every registered counter with its value, sorted by name. *)

val reset_all : unit -> unit
(** Zeroes every counter (registrations are kept). *)
