let rec span_json (s : Span.snapshot) =
  Json.Obj
    [
      ("name", Json.String s.Span.name);
      ("count", Json.Int s.Span.count);
      ("total_s", Json.Float s.Span.total_s);
      ("self_s", Json.Float s.Span.self_s);
      ("children", Json.List (List.map span_json s.Span.children));
    ]

let histogram_json h =
  if Histogram.count h = 0 then Json.Obj [ ("count", Json.Int 0) ]
  else
    Json.Obj
      [
        ("count", Json.Int (Histogram.count h));
        ("sum", Json.Float (Histogram.sum h));
        ("mean", Json.Float (Histogram.mean h));
        ("min", Json.Float (Histogram.min_value h));
        ("max", Json.Float (Histogram.max_value h));
        ("p50", Json.Float (Histogram.quantile h 0.5));
        ("p90", Json.Float (Histogram.quantile h 0.9));
        ("p99", Json.Float (Histogram.quantile h 0.99));
      ]

let to_json ?(meta = []) () =
  Json.Obj
    [
      ("meta", Json.Obj meta);
      ("spans", Json.List (List.map span_json (Span.roots ())));
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Counter.all ())) );
      ( "histograms",
        Json.Obj
          (List.map (fun h -> (Histogram.name h, histogram_json h)) (Histogram.all ()))
      );
    ]

let to_string ?meta () = Json.to_string ~indent:2 (to_json ?meta ())

(* Renaming over a non-regular target (/dev/null, a fifo, …) would
   replace the special file with a plain one; those get direct writes. *)
let renameable path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_REG -> true
  | _ -> false
  | exception Unix.Unix_error _ -> true

(* Temp file + atomic rename: a crash mid-dump leaves either the old
   report or the new one, never a truncated JSON document. *)
let write ?meta path =
  let target = if renameable path then path ^ ".tmp" else path in
  let oc = open_out target in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string ?meta ());
      output_char oc '\n');
  if target <> path then Sys.rename target path
