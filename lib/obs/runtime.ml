(* Internal shared state of the observability layer: the master switch
   and the clock.  Not exported through [Obs] — instrumented code only
   ever sees the [Counter]/[Histogram]/[Span] front-ends, all of which
   check [enabled] first so that instrumentation is a no-op when the
   layer is off. *)

let enabled = ref false

(* Wall-clock seconds.  [Unix.gettimeofday] is not monotonic, but it is
   the best portable clock the stdlib offers without C stubs; spans are
   long enough (whole pipeline phases) that NTP slew is noise. *)
let now () = Unix.gettimeofday ()
