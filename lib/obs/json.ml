type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* keep a decimal point so the value round-trips as a float *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let to_string ?indent v =
  let buf = Buffer.create 256 in
  let nl level =
    match indent with
    | None -> ()
    | Some n ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (n * level) ' ')
  in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            go (level + 1) item)
          items;
        nl level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (level + 1);
            escape_to buf k;
            Buffer.add_char buf ':';
            if indent <> None then Buffer.add_char buf ' ';
            go (level + 1) item)
          fields;
        nl level;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the input string.             *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf c =
    (* encode a Unicode scalar value (from \uXXXX) as UTF-8 *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              utf8_of_code buf code;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
    in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "json parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let find path v =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some v) path
