type t = { name : string; mutable value : int }

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let make name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { name; value = 0 } in
      Hashtbl.add registry name c;
      c

let name c = c.name
let incr c = if !Runtime.enabled then c.value <- c.value + 1
let add c n = if !Runtime.enabled then c.value <- c.value + n
let value c = c.value

let all () =
  Hashtbl.fold (fun name c acc -> (name, c.value) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () = Hashtbl.iter (fun _ c -> c.value <- 0) registry
