type t = { name : string; value : int Atomic.t }

(* [make] may be called lazily from worker domains (lib/par); guard the
   registry.  Increments themselves are lock-free. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let make name =
  Mutex.protect registry_mutex @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = { name; value = Atomic.make 0 } in
      Hashtbl.add registry name c;
      c

let name c = c.name
let incr c = if !Runtime.enabled then Atomic.incr c.value

let add c n =
  if !Runtime.enabled then ignore (Atomic.fetch_and_add c.value n)

let value c = Atomic.get c.value

let all () =
  Mutex.protect registry_mutex @@ fun () ->
  Hashtbl.fold (fun name c acc -> (name, Atomic.get c.value) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset_all () =
  Mutex.protect registry_mutex @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) registry
