(** The JSON metrics report: one snapshot of every span, counter and
    histogram currently accumulated.

    The document shape (see [docs/ARCHITECTURE.md] for a walkthrough):

    {v
    { "meta":       { ...caller-supplied context... },
      "spans":      [ { "name", "count", "total_s", "self_s",
                        "children": [ ... ] }, ... ],
      "counters":   { "<name>": <int>, ... },
      "histograms": { "<name>": { "count", "sum", "mean", "min", "max",
                                  "p50", "p90", "p99" }, ... } }
    v}

    Histogram statistics are omitted ([count] only) when empty, so the
    report never contains NaN — it stays valid JSON. *)

val to_json : ?meta:(string * Json.t) list -> unit -> Json.t
(** The report as a JSON tree.  [meta] is caller context (tool version,
    workload parameters, timestamp) copied verbatim into ["meta"]. *)

val to_string : ?meta:(string * Json.t) list -> unit -> string
(** {!to_json} pretty-printed with 2-space indentation. *)

val write : ?meta:(string * Json.t) list -> string -> unit
(** [write path] saves {!to_string} (plus a trailing newline) to
    [path], atomically: the report is written to [path ^ ".tmp"] and
    renamed into place, so a crash never leaves a truncated report. *)
