let enable () = Runtime.enabled := true
let disable () = Runtime.enabled := false
let enabled () = !Runtime.enabled

let reset () =
  Counter.reset_all ();
  Histogram.reset_all ();
  Span.reset ()

let with_enabled f =
  let before = !Runtime.enabled in
  Runtime.enabled := true;
  Fun.protect ~finally:(fun () -> Runtime.enabled := before) f

module Json = Json
module Counter = Counter
module Histogram = Histogram
module Span = Span
module Report = Report
