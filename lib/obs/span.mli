(** Hierarchical wall-clock timing spans.

    [run name f] times [f ()] and charges the elapsed time to the node
    [name] {e under the currently running span}, building a call-tree of
    phases: entering ["integrate"] and, inside it, ["integrate.lattice"]
    yields a parent node with a child.  Durations and hit counts
    accumulate across runs of the same path, so a span executed in a
    loop shows up once with [count] = iterations.

    While the layer is disabled, [run name f] is exactly [f ()] — one
    branch of overhead, no state touched.  Do not toggle
    {!Obs.enable}/{!Obs.disable} or call {!reset} while a span is
    running; the tree would be left dangling.

    The ambient ancestry is domain-local: a span entered on a [lib/par]
    worker domain starts a fresh ancestry, so it accumulates under a
    root-level node named after it rather than under the span the
    submitting domain happens to be running.  Tree updates are
    serialised, so concurrent spans of the same name never lose counts;
    only the sequential path's tree {e shape} is stable, which is why
    the bench-diff gate compares sequential ([--jobs 1]) reports. *)

val run : string -> (unit -> 'a) -> 'a
(** Times [f] and accounts it to child [name] of the current span (a
    root span when none is running).  Exception-safe: the span closes
    and is recorded even when [f] raises. *)

type snapshot = {
  name : string;
  count : int;  (** times this path was entered *)
  total_s : float;  (** inclusive wall-clock seconds *)
  self_s : float;  (** [total_s] minus the children's [total_s] *)
  children : snapshot list;  (** sorted by name *)
}
(** An immutable copy of one node of the span tree. *)

val roots : unit -> snapshot list
(** The accumulated top-level spans, sorted by name. *)

val reset : unit -> unit
(** Drops the whole tree.  Must not be called inside {!run}. *)
