(** Observability for the integration pipeline: counters, histograms and
    hierarchical timing spans, exported as a JSON report.

    The layer is {e off by default} and globally switched: while
    disabled, every instrumentation call short-circuits on one boolean
    load — no state is touched, so code can stay instrumented
    permanently (the library tests assert this no-op property).  A
    metrics run looks like:

    {[
      Obs.enable ();
      Obs.reset ();
      (* ... run the pipeline, queries, workloads ... *)
      Obs.Report.write "BENCH.json";
      Obs.disable ()
    ]}

    Instrumentation points live next to the code they measure and use
    dotted names grouped by layer (["similarity.pairs_compared"],
    ["assertions.derived"], ["query.eval_seconds"]); the full inventory
    is documented in [docs/ARCHITECTURE.md].

    The layer is domain-safe: counters are atomic, histograms serialise
    observations under a per-histogram lock, and {!Span}'s ambient stack
    is domain-local (spans entered on a [lib/par] worker start a fresh
    ancestry and land at the root level of the tree).  The lifecycle
    calls — {!enable}, {!disable}, {!reset}, report generation — are
    still single-domain: call them only when no pool work is in
    flight. *)

val enable : unit -> unit
(** Turns collection on (idempotent). *)

val disable : unit -> unit
(** Turns collection off (idempotent).  Must not be called while a
    {!Span.run} is in progress. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zeroes all counters and histograms and drops the span tree;
    registrations survive.  Must not be called while a {!Span.run} is in
    progress. *)

val with_enabled : (unit -> 'a) -> 'a
(** [with_enabled f] runs [f] with collection on, restoring the previous
    state afterwards (also on exceptions). *)

module Json = Json
module Counter = Counter
module Histogram = Histogram
module Span = Span
module Report = Report
