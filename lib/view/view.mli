(** Materialized user views with incremental maintenance.

    The paper's Phase 4 maps "user queries and transactions specified
    against each view" to the integrated schema per request.  This
    module adds the serving-tier complement: a client {e names} a view
    query once, the daemon materializes its extent, and the catalog
    keeps the extent consistent under updates — incrementally where the
    update's effect is a pure extension, by recompute or staleness
    otherwise.

    {2 Correctness anchor}

    After {e any} interleaving of updates, refreshes and reads, a fresh
    view's materialized extent is byte-identical to from-scratch
    evaluation of its defining query ({!Query.Eval.run}).  Two facts
    make the cheap path sound:

    - entity ids are allocated monotonically and join-free answers are
      produced in ascending id order, so the row for a newly inserted
      entity belongs at the {e end} of the extent — an O(1) append;
    - the delta row is built by the evaluator's own exported primitives
      ({!Query.Eval.matches} / {!Query.Eval.project_entity}), so it
      cannot drift from what a full re-evaluation would produce.

    Deletes and modifies (and inserts into joined views' dependency
    classes) are not pure extensions; those either recompute ([Eager])
    or mark the view stale ([Lazy]/[Manual]).

    {2 Staleness policies}

    - [Eager]: maintained on every affecting update; reads never pay a
      refresh.
    - [Lazy]: affecting updates mark the view stale; the next read
      refreshes first.  Reads still never observe stale data.
    - [Manual]: affecting updates mark the view stale; reads serve the
      materialized rows {e as-is} with a freshness flag, and only an
      explicit {!refresh} recomputes.  The one policy that trades
      freshness for latency.

    {2 Concurrency}

    A catalog is not internally synchronized.  The serving tier calls
    every function below under the same lock that guards the store the
    views are defined over (the daemon's session lock), which is also
    what makes "fresh" a meaningful promise. *)

type policy = Eager | Lazy | Manual

val policy_of_string : string -> policy option
(** Parses ["eager"], ["lazy"], ["manual"]. *)

val policy_to_string : policy -> string

type info = {
  name : string;
  base : string option;
      (** component-schema view the definition was written against, if
          any (the catalog itself stores the rewritten, integrated-form
          query) *)
  policy : policy;
  source : string;  (** the defining query, as the client sent it *)
  fresh : bool;
  rows : int;  (** materialized extent size *)
  hits : int;  (** reads served from the materialized extent *)
  stale_marks : int;  (** fresh->stale transitions *)
  refreshes : int;  (** full recomputations *)
  delta_appends : int;  (** O(1) incremental row appends *)
  last_refresh_ms : float;  (** duration of the last recompute, ms *)
}
(** A snapshot of one view's definition and counters, as reported by
    the [view_stats] wire op and the health endpoint. *)

type t
(** A view catalog: named materialized extents plus a shape index used
    to serve ad-hoc queries that coincide with a registered view. *)

val create : unit -> t

val define :
  t ->
  name:string ->
  ?base:string ->
  policy:policy ->
  source:string ->
  query:Query.Ast.t ->
  post:(Query.Eval.row list -> Query.Eval.row list) ->
  Instance.Store.t ->
  (unit, string) result
(** Registers a view and materializes it now.  [query] must be in
    integrated form (already rewritten if the client defined it against
    a component view); [post] maps raw integrated-form rows back to the
    client's column names and is applied by {!read}.  Fails on a
    duplicate name, a duplicate query shape (keyed on
    {!Query.Ast.to_string} of [query]) or an ill-typed [query]. *)

val install :
  t ->
  name:string ->
  ?base:string ->
  policy:policy ->
  source:string ->
  query:Query.Ast.t ->
  post:(Query.Eval.row list -> Query.Eval.row list) ->
  rows:Query.Eval.row list ->
  fresh:bool ->
  unit ->
  (unit, string) result
(** Registers a view with its materialized extent and freshness
    {e injected} rather than evaluated — the replication
    snapshot-install path.  [rows] are raw (integrated column names, no
    [post] applied), exactly what {!dump} exports; counters start at
    zero.  Same duplicate-name/shape checks as {!define}.  Injection
    matters for correctness: a [Manual] view's extent may legitimately
    be stale relative to the store, so re-deriving it on the installing
    node would change the served bytes and the freshness flag. *)

val dump : t -> (info * Query.Eval.row list) list
(** Every view's snapshot-relevant state in definition order: its
    {!info} (name, base, policy, source, freshness) paired with the raw
    materialized extent (integrated column names, no [post]) — the
    source side of {!install}. *)

val drop : t -> string -> bool
(** Removes a view; [false] if the name is unknown. *)

val mem : t -> string -> bool
val names : t -> string list
(** Registered view names, in definition order. *)

val infos : t -> info list
(** Per-view snapshots, in definition order. *)

val info : t -> string -> info option
val definition : t -> string -> Query.Ast.t option
(** The integrated-form defining query (for tests and persistence). *)

val read :
  t -> string -> Instance.Store.t -> (Query.Eval.row list * bool, string) result
(** Reads a view by name; rows are in the client's column names
    ([post] applied).  The boolean is the freshness of what was served:
    always [true] for [Eager]/[Lazy] (a stale [Lazy] view refreshes
    first), while [Manual] serves the current extent and reports
    honestly.  [Error] only for an unknown name. *)

val lookup_shape :
  t -> Query.Ast.t -> Instance.Store.t -> Query.Eval.row list option
(** Serves an ad-hoc integrated-form query from a registered view with
    the same shape, if that can be done without breaking query
    semantics: [Eager]/[Lazy] views qualify (refreshing first when
    stale); a stale [Manual] view returns [None] — a plain query must
    never silently read stale data.  Rows are raw (integrated column
    names); the caller applies its own back-mapping. *)

val refresh : t -> string -> Instance.Store.t -> (float, string) result
(** Recomputes the view from scratch; returns the elapsed milliseconds.
    [Error] only for an unknown name. *)

val notify_update : t -> Query.Update.t -> Instance.Store.t -> unit
(** Called after an update was applied, with the {e post-update} store.
    Classifies the update against every view: unaffected views are
    skipped, a pure extension is delta-appended, anything else
    recomputes ([Eager]) or marks stale ([Lazy]/[Manual]). *)

val notify_reset : t -> Instance.Store.t -> string list
(** Called when the store was rebuilt wholesale (schema change, session
    reload).  Re-materializes every view against the new store and
    returns the names of views that were dropped because their defining
    query no longer typechecks.  Restores the catalog invariant that
    every registered view is evaluable. *)

val notify_op : t -> Integrate.Op.t -> unit
(** The journal's op-stream hook ({!Journal.subscribe} target): a
    schema-level mutation invalidates every materialized extent, so all
    views are marked stale pending the {!notify_reset} that follows the
    rebuild. *)

(** Test-only access to raw internal state. *)
module For_testing : sig
  val raw_rows : t -> string -> (Query.Eval.row list * bool) option
  (** The materialized extent exactly as stored (integrated column
      names, no [post], no refresh side effects) and its freshness —
      what the differential property in test/test_view.ml compares
      against from-scratch evaluation. *)
end
