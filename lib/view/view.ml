(* Materialized view catalog and incremental maintenance.  See the
   interface for the policy semantics and the byte-identity argument;
   the load-bearing choice here is that the delta path reuses the
   evaluator's own exported primitives, so incremental and from-scratch
   results cannot drift apart. *)

open Ecr

type policy = Eager | Lazy | Manual

let policy_of_string = function
  | "eager" -> Some Eager
  | "lazy" -> Some Lazy
  | "manual" -> Some Manual
  | _ -> None

let policy_to_string = function
  | Eager -> "eager"
  | Lazy -> "lazy"
  | Manual -> "manual"

type info = {
  name : string;
  base : string option;
  policy : policy;
  source : string;
  fresh : bool;
  rows : int;
  hits : int;
  stale_marks : int;
  refreshes : int;
  delta_appends : int;
  last_refresh_ms : float;
}

type entry = {
  e_name : string;
  e_base : string option;
  e_policy : policy;
  e_source : string;
  query : Query.Ast.t;
  post : Query.Eval.row list -> Query.Eval.row list;
  mutable rows : Query.Eval.row list;
  mutable fresh : bool;
  mutable hits : int;
  mutable stale_marks : int;
  mutable refreshes : int;
  mutable delta_appends : int;
  mutable last_refresh_ms : float;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  shapes : (string, string) Hashtbl.t;  (* query shape -> view name *)
  mutable order : string list;  (* definition order *)
}

(* ------------------------------------------------------------------ *)
(* Observability: the catalog counters the ISSUE of record asks for,
   plus the maintenance-path split (deltas vs recomputes vs skips) that
   explains where write cost goes. *)

let c_defines = Obs.Counter.make "view.defines"
let c_drops = Obs.Counter.make "view.drops"
let c_hits = Obs.Counter.make "view.hits"
let c_stale = Obs.Counter.make "view.stale"
let c_refreshes = Obs.Counter.make "view.refreshes"
let c_deltas = Obs.Counter.make "view.delta_appends"
let c_recomputes = Obs.Counter.make "view.recomputes"
let c_skipped = Obs.Counter.make "view.skipped_updates"
let h_refresh_ms = Obs.Histogram.make "view.refresh_ms"

let create () =
  { entries = Hashtbl.create 8; shapes = Hashtbl.create 8; order = [] }

let shape_key q = Query.Ast.to_string q

let find t name = Hashtbl.find_opt t.entries name

let mem t name = Hashtbl.mem t.entries name
let names t = t.order

let info_of (e : entry) =
  {
    name = e.e_name;
    base = e.e_base;
    policy = e.e_policy;
    source = e.e_source;
    fresh = e.fresh;
    rows = List.length e.rows;
    hits = e.hits;
    stale_marks = e.stale_marks;
    refreshes = e.refreshes;
    delta_appends = e.delta_appends;
    last_refresh_ms = e.last_refresh_ms;
  }

let infos t = List.filter_map (fun n -> Option.map info_of (find t n)) t.order
let info t name = Option.map info_of (find t name)
let definition t name = Option.map (fun e -> e.query) (find t name)

(* ------------------------------------------------------------------ *)
(* Refresh: from-scratch evaluation is both the fallback maintenance
   strategy and the definition of correctness.                         *)

let refresh_entry e store =
  let t0 = Unix.gettimeofday () in
  e.rows <- Query.Eval.run e.query store;
  e.fresh <- true;
  e.refreshes <- e.refreshes + 1;
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  e.last_refresh_ms <- ms;
  Obs.Histogram.observe h_refresh_ms ms;
  Obs.Counter.incr c_refreshes;
  ms

let refresh t name store =
  match find t name with
  | None -> Error (Printf.sprintf "unknown view %s" name)
  | Some e -> Ok (refresh_entry e store)

(* ------------------------------------------------------------------ *)
(* Catalog mutation.                                                   *)

let define t ~name ?base ~policy ~source ~query ~post store =
  if name = "" then Error "view name must be non-empty"
  else if mem t name then Error (Printf.sprintf "view %s already exists" name)
  else
    let key = shape_key query in
    match Hashtbl.find_opt t.shapes key with
    | Some other ->
        Error
          (Printf.sprintf "view %s already materializes this query shape"
             other)
    | None -> (
        match Query.Eval.run query store with
        | exception Query.Eval.Error msg -> Error msg
        | rows ->
            let e =
              {
                e_name = name;
                e_base = base;
                e_policy = policy;
                e_source = source;
                query;
                post;
                rows;
                fresh = true;
                hits = 0;
                stale_marks = 0;
                refreshes = 0;
                delta_appends = 0;
                last_refresh_ms = 0.;
              }
            in
            Hashtbl.replace t.entries name e;
            Hashtbl.replace t.shapes key name;
            t.order <- t.order @ [ name ];
            Obs.Counter.incr c_defines;
            Ok ())

(* Snapshot install: register an entry with its extent and freshness
   injected instead of evaluated.  Replication snapshots must carry the
   materialized rows verbatim — a Manual view's extent may be stale
   relative to the store, and re-deriving it on the installing node
   would change the bytes (and the fresh flag) its reads serve. *)
let install t ~name ?base ~policy ~source ~query ~post ~rows ~fresh () =
  if name = "" then Error "view name must be non-empty"
  else if mem t name then Error (Printf.sprintf "view %s already exists" name)
  else
    let key = shape_key query in
    match Hashtbl.find_opt t.shapes key with
    | Some other ->
        Error
          (Printf.sprintf "view %s already materializes this query shape"
             other)
    | None ->
        let e =
          {
            e_name = name;
            e_base = base;
            e_policy = policy;
            e_source = source;
            query;
            post;
            rows;
            fresh;
            hits = 0;
            stale_marks = 0;
            refreshes = 0;
            delta_appends = 0;
            last_refresh_ms = 0.;
          }
        in
        Hashtbl.replace t.entries name e;
        Hashtbl.replace t.shapes key name;
        t.order <- t.order @ [ name ];
        Obs.Counter.incr c_defines;
        Ok ()

let dump t =
  List.filter_map
    (fun n -> Option.map (fun e -> (info_of e, e.rows)) (find t n))
    t.order

let drop t name =
  match find t name with
  | None -> false
  | Some e ->
      Hashtbl.remove t.entries name;
      Hashtbl.remove t.shapes (shape_key e.query);
      t.order <- List.filter (fun n -> n <> name) t.order;
      Obs.Counter.incr c_drops;
      true

(* ------------------------------------------------------------------ *)
(* Serving.                                                            *)

let hit e =
  e.hits <- e.hits + 1;
  Obs.Counter.incr c_hits

let read t name store =
  match find t name with
  | None -> Error (Printf.sprintf "unknown view %s" name)
  | Some e ->
      (match e.e_policy with
      | Eager | Lazy -> if not e.fresh then ignore (refresh_entry e store)
      | Manual -> ());
      hit e;
      Ok (e.post e.rows, e.fresh)

let lookup_shape t q store =
  match Hashtbl.find_opt t.shapes (shape_key q) with
  | None -> None
  | Some name -> (
      match find t name with
      | None -> None
      | Some e -> (
          match e.e_policy with
          | Eager | Lazy ->
              if not e.fresh then ignore (refresh_entry e store);
              hit e;
              Some e.rows
          | Manual ->
              (* plain queries must never silently read stale data *)
              if e.fresh then begin
                hit e;
                Some e.rows
              end
              else None))

(* ------------------------------------------------------------------ *)
(* Maintenance: classify each update against each view.                *)

let related schema a b =
  Name.equal a b
  || Schema.is_ancestor schema ~ancestor:a b
  || Schema.is_ancestor schema ~ancestor:b a

(* Classes whose entities' attribute values the answer projects or
   filters on: modifications elsewhere cannot change the answer. *)
let value_deps (q : Query.Ast.t) =
  match q.Query.Ast.via with
  | None -> [ q.Query.Ast.from_class ]
  | Some j -> [ q.Query.Ast.from_class; j.Query.Ast.target ]

(* Classes whose entity removal can change the answer: additionally
   every participant of the joined relationship, because removing any
   participant removes the link (n-ary relationships included). *)
let extent_deps schema (q : Query.Ast.t) =
  match q.Query.Ast.via with
  | None -> [ q.Query.Ast.from_class ]
  | Some j ->
      let rel_objs =
        match Schema.find_relationship j.Query.Ast.rel schema with
        | Some r -> Relationship.objects r
        | None -> []
      in
      (q.Query.Ast.from_class :: j.Query.Ast.target :: rel_objs)

let skip () = Obs.Counter.incr c_skipped

let mark_stale e =
  if e.fresh then begin
    e.fresh <- false;
    e.stale_marks <- e.stale_marks + 1;
    Obs.Counter.incr c_stale
  end

(* An affecting update that is not a pure extension: Eager pays the
   recompute at write time, Lazy/Manual defer it. *)
let stale_or_recompute e store =
  match e.e_policy with
  | Eager ->
      ignore (refresh_entry e store);
      Obs.Counter.incr c_recomputes
  | Lazy | Manual -> mark_stale e

(* Insert is the incremental fast path: for a join-free view whose
   from-class (transitively) contains the inserted class, the new
   entity has the highest id in the store, so its row — if the
   predicate admits it — belongs at the end of the extent.  Joined
   views are never affected by Insert: a new entity participates in no
   relationship instances yet. *)
let apply_insert e cls store schema =
  match e.query.Query.Ast.via with
  | Some _ -> skip ()
  | None ->
      let v = e.query.Query.Ast.from_class in
      if Name.equal cls v || Schema.is_ancestor schema ~ancestor:v cls then begin
        if e.fresh then begin
          let extent = Instance.Store.extent v store in
          let oid = Instance.Store.Oid.Set.max_elt extent in
          let admitted =
            match e.query.Query.Ast.where with
            | None -> true
            | Some p ->
                Query.Eval.matches
                  (fun a -> Instance.Store.value oid a store)
                  p
          in
          if admitted then begin
            e.rows <-
              e.rows
              @ [
                  Query.Eval.project_entity schema v oid store
                    e.query.Query.Ast.select;
                ];
            e.delta_appends <- e.delta_appends + 1;
            Obs.Counter.incr c_deltas
          end
          else skip ()
        end
        else if e.e_policy = Eager then begin
          ignore (refresh_entry e store);
          Obs.Counter.incr c_recomputes
        end
        (* Lazy/Manual and already stale: the pending refresh covers it *)
      end
      else skip ()

let iter_entries t f = List.iter (fun n -> Option.iter f (find t n)) t.order

let notify_update t u store =
  let schema = Instance.Store.schema store in
  iter_entries t (fun e ->
      match u with
      | Query.Update.Insert (cls, _) -> apply_insert e cls store schema
      | Query.Update.Delete (cls, _) ->
          if List.exists (fun d -> related schema d cls) (extent_deps schema e.query)
          then stale_or_recompute e store
          else skip ()
      | Query.Update.Modify (cls, _, _) ->
          if List.exists (fun d -> related schema d cls) (value_deps e.query)
          then stale_or_recompute e store
          else skip ())

let notify_reset t store =
  let dropped = ref [] in
  iter_entries t (fun e ->
      match refresh_entry e store with
      | (_ : float) -> ()
      | exception Query.Eval.Error _ -> dropped := e.e_name :: !dropped);
  let dropped = List.rev !dropped in
  List.iter (fun n -> ignore (drop t n)) dropped;
  dropped

let notify_op t (_ : Integrate.Op.t) = iter_entries t (fun e -> mark_stale e)

module For_testing = struct
  let raw_rows t name = Option.map (fun e -> (e.rows, e.fresh)) (find t name)
end
