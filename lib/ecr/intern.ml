(* Global symbol table: strings to dense int ids.  See intern.mli. *)

(* The two directions are kept in structures with different concurrency
   disciplines:

   - [ids] (string -> id) is a hashtable guarded by [mu].  Interning
     happens at parse/construction time, which is rare next to
     comparisons, so taking the lock there is cheap.
   - [strings] (id -> string) is an immutable array snapshot behind an
     [Atomic].  Lookups — the hot direction, behind [Name.to_string]
     and every order-sensitive comparison — are lock-free: readers
     [Atomic.get] the current snapshot and index it.  Writers (under
     [mu]) install a grown copy before publishing the id, so any id a
     reader can legitimately hold indexes into every later snapshot. *)

let mu = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 1024
let strings : string array Atomic.t = Atomic.make [||]
let count_ = Atomic.make 0

let id s =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt ids s with
      | Some i -> i
      | None ->
          let i = Atomic.get count_ in
          let arr = Atomic.get strings in
          let arr' =
            if i < Array.length arr then arr
            else begin
              let grown = Array.make (Int.max 64 (2 * Array.length arr)) "" in
              Array.blit arr 0 grown 0 (Array.length arr);
              Atomic.set strings grown;
              grown
            end
          in
          arr'.(i) <- s;
          (* publish the id only after the slot is readable *)
          Atomic.set count_ (i + 1);
          Hashtbl.add ids s i;
          i)

let find s = Mutex.protect mu (fun () -> Hashtbl.find_opt ids s)
let count () = Atomic.get count_

let to_string i =
  if i < 0 || i >= Atomic.get count_ then
    invalid_arg (Printf.sprintf "Intern.to_string: unknown id %d" i)
  else (Atomic.get strings).(i)
