(* A name is an interned identifier: the representation is its dense
   Intern id, so equality is one integer compare and the id doubles as
   an array index in the flat comparison kernels.  Ordering stays the
   lexicographic order of the spelled-out names — every Map/Set built
   here iterates exactly as the string-keyed representation did. *)

type t = int

exception Invalid of string

let is_leading_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_body_char c = is_leading_char c || (c >= '0' && c <= '9')

let is_valid s =
  String.length s > 0
  && is_leading_char s.[0]
  && (let ok = ref true in
      String.iter (fun c -> if not (is_body_char c) then ok := false) s;
      !ok)

let of_string s = if is_valid s then Intern.id s else raise (Invalid s)
let of_string_opt s = if is_valid s then Some (Intern.id s) else None
let to_string = Intern.to_string
let v = of_string
let id n = n
let of_id i = i
let hash n = n
let equal = Int.equal

let compare a b =
  if Int.equal a b then 0 else String.compare (to_string a) (to_string b)

let equal_ci a b =
  Int.equal a b
  || String.equal
       (String.lowercase_ascii (to_string a))
       (String.lowercase_ascii (to_string b))

let concat ?(sep = "_") a b = Intern.id (to_string a ^ sep ^ to_string b)

let abbreviate n name =
  let name = to_string name in
  if String.length name <= n then name else String.sub name 0 n

let pp fmt n = Format.pp_print_string fmt (to_string n)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
