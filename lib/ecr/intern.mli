(** Global symbol table: every distinct string maps to a dense int id.

    The data-plane representation change of the compact-kernel work
    (docs/PERFORMANCE.md): all schema and instance names are interned
    once, at parse/construction time, so that the comparison kernels —
    equality partition aggregates, OCS ranking, instance column
    lookups — run on machine integers and flat arrays instead of
    string-keyed functional maps.  {!Name} interns transparently in
    [of_string]; this module is the table itself, exposed for the flat
    kernels ([Integrate.Acs_index], [Instance.Store]) and the tests.

    Ids are dense: the [n] distinct strings interned so far hold ids
    [0 .. n-1], in first-intern order, which is what makes them usable
    as array indices.  The table is append-only and process-global;
    ids are {e not} stable across processes, so nothing persisted (the
    journal, the wire protocol) ever carries a raw id — both always
    spell names out (see docs/WIRE.md).

    Thread-safety: all operations are safe to call from any domain.
    [to_string] is lock-free; [id] takes a mutex (interning is rare
    next to lookups). *)

val id : string -> int
(** [id s] is the dense id of [s], interning it first if needed.  Two
    calls with equal strings always return the same id. *)

val find : string -> int option
(** [find s] is [s]'s id if it has been interned, without interning. *)

val to_string : int -> string
(** The string a live id was interned from.
    @raise Invalid_argument on an id never returned by {!id}. *)

val count : unit -> int
(** Number of distinct strings interned so far (ids are [0..count-1]). *)
