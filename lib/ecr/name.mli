(** Identifiers used throughout the ECR model.

    A name is a non-empty string starting with a letter or underscore and
    containing only letters, digits and underscores.  Names compare
    case-sensitively: the paper's examples distinguish [Student] from
    [student] only by convention, and we preserve the author's spelling.

    Representation: names are {e interned} ({!Intern}) — [of_string]
    maps every distinct spelling to a dense int id once, so {!equal} is
    an integer compare and {!id} indexes directly into the flat
    comparison kernels ([Integrate.Acs_index], [Instance.Store]
    columns).  {!compare} still orders by the spelled-out string, so
    {!Map}/{!Set} iteration order — and every screen, report and wire
    response derived from it — is unchanged from the string-keyed
    representation. *)

type t
(** An identifier (an interned symbol). *)

exception Invalid of string
(** Raised by {!of_string} on a malformed identifier; the payload is the
    offending string. *)

val of_string : string -> t
(** [of_string s] validates [s] as an identifier.
    @raise Invalid if [s] is empty or contains an illegal character. *)

val of_string_opt : string -> t option
(** Like {!of_string}, returning [None] instead of raising. *)

val to_string : t -> string

val v : string -> t
(** Terse alias for {!of_string}, used pervasively when building schemas
    in code. *)

val equal : t -> t -> bool
(** One integer compare (names are interned). *)

val compare : t -> t -> int
(** Lexicographic order of the spelled-out names — {e not} id order —
    so ordered containers iterate as they always did. *)

val id : t -> int
(** The dense intern id ([>= 0]); equal names share it.  The index used
    by the flat kernels.  Never persist or transmit a raw id: it is
    process-local (see {!Intern}). *)

val of_id : int -> t
(** Inverse of {!id} for ids obtained from it in this process.  The id
    is trusted; feeding an id {!Intern} never issued raises
    [Invalid_argument] only when the name is later spelled out. *)

val hash : t -> int
(** A hash consistent with {!equal} (the id itself). *)

val equal_ci : t -> t -> bool
(** Case-insensitive equality, used only by matching heuristics. *)

val is_valid : string -> bool
(** [is_valid s] is [true] iff [of_string s] would succeed. *)

val concat : ?sep:string -> t -> t -> t
(** [concat a b] joins two names with [sep] (default ["_"]). *)

val abbreviate : int -> t -> string
(** [abbreviate n name] is the first [n] characters of [name], used when
    synthesising derived-class names such as [D_Stud_Facu]. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
