bin/sit.ml: Arg Cmd Cmdliner Ddl Dictionary Ecr Filename Integrate List Manpage Printf Term Tui
