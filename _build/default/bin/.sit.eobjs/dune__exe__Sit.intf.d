bin/sit.mli:
