bin/sit_batch.ml: Arg Cmd Cmdliner Ddl Dictionary Ecr Format Fun Instance Integrate List Option Printf Query String Term Tui
