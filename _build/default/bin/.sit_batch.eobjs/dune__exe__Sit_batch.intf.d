bin/sit_batch.mli:
