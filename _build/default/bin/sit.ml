(* sit — the Schema Integration Tool, interactively.

   Reproduces the menu/form tool of Sheth, Larson, Cornelio & Navathe
   (ICDE 1988).  Component schemas can be pre-loaded from ECR DDL files
   given on the command line; everything else happens through the
   screens, exactly as in the paper: schema collection, attribute
   equivalence specification, assertion specification with conflict
   resolution, and browsing of the integrated schema. *)

let load_file ws file =
  if Filename.check_suffix file ".sitd" then
    (* a data dictionary: schemas plus a recorded session *)
    Dictionary.merge ws (Dictionary.load file)
  else
    let schemas = Ddl.Parser.schemas_of_file file in
    List.fold_left
      (fun ws s ->
        match Ecr.Schema.validate s with
        | [] -> Integrate.Workspace.add_schema s ws
        | errors ->
            List.iter
              (fun e ->
                Printf.eprintf "%s: %s\n" file (Ecr.Schema.error_to_string e))
              errors;
            exit 2)
      ws schemas

let run files save analyse =
  let workspace =
    List.fold_left load_file Integrate.Workspace.empty files
  in
  if analyse then
    List.iter
      (fun issue ->
        Printf.printf "analysis: %s\n" (Integrate.Analysis.to_string issue))
      (Integrate.Analysis.analyse workspace);
  let final = Tui.Session.run ~workspace Tui.Session.stdio in
  match save with
  | Some path ->
      Dictionary.save path final;
      Printf.printf "session saved to %s\n" path
  | None -> ()

open Cmdliner

let files =
  let doc =
    "ECR DDL files (or .sitd data dictionaries) to pre-load into the \
     workspace."
  in
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)

let save =
  let doc = "Save the final workspace as a data dictionary to $(docv)." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let analyse =
  let doc = "Report schema-analysis incompatibilities before starting." in
  Arg.(value & flag & info [ "analyse" ] ~doc)

let cmd =
  let doc = "interactive schema and view integration tool (ECR model)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "An interactive tool that assists database designers and \
         administrators (DDAs) in integrating component schemas expressed \
         in the Entity-Category-Relationship model into a single \
         integrated schema, following the four-phase methodology of \
         Sheth, Larson, Cornelio and Navathe (ICDE 1988): schema \
         collection, schema analysis (attribute equivalences), assertion \
         specification with automatic derivation and conflict detection, \
         and integration with generated mappings.";
    ]
  in
  Cmd.v
    (Cmd.info "sit" ~version:"1.0.0" ~doc ~man)
    Term.(const run $ files $ save $ analyse)

let () = exit (Cmd.eval cmd)
