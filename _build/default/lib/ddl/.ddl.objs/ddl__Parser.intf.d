lib/ddl/parser.mli: Ecr
