lib/ddl/printer.mli: Ecr Format
