lib/ddl/lexer.mli:
