lib/ddl/printer.ml: Attribute Cardinality Domain Ecr Format Fun List Name Object_class Relationship Schema String
