lib/ddl/lexer.ml: List Printf String
