lib/ddl/parser.ml: Attribute Cardinality Domain Ecr Fun Lexer List Name Object_class Printf Relationship Schema String
