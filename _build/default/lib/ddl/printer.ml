open Ecr

let pp_attr fmt a =
  Format.fprintf fmt "%s : %s%s;"
    (Name.to_string a.Attribute.name)
    (Domain.to_string a.Attribute.domain)
    (if a.Attribute.key then " key" else "")

let pp_body fmt attrs =
  match attrs with
  | [] -> Format.pp_print_string fmt ";"
  | _ ->
      Format.pp_print_string fmt " {";
      List.iter (fun a -> Format.fprintf fmt "\n    %a" pp_attr a) attrs;
      Format.pp_print_string fmt "\n  }"

let pp_object fmt oc =
  match oc.Object_class.kind with
  | Object_class.Entity_set ->
      Format.fprintf fmt "entity %s%a" (Name.to_string oc.Object_class.name)
        pp_body oc.Object_class.attributes
  | Object_class.Category parents ->
      Format.fprintf fmt "category %s of %s%a"
        (Name.to_string oc.Object_class.name)
        (String.concat ", " (List.map Name.to_string parents))
        pp_body oc.Object_class.attributes

let pp_participant fmt p =
  (match p.Relationship.role with
  | Some role -> Format.fprintf fmt "%s: " (Name.to_string role)
  | None -> ());
  Format.fprintf fmt "%s %s"
    (Name.to_string p.Relationship.obj)
    (Cardinality.to_string p.Relationship.card)

let pp_relationship fmt r =
  Format.fprintf fmt "relationship %s (%a)%a"
    (Name.to_string r.Relationship.name)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_participant)
    r.Relationship.participants pp_body r.Relationship.attributes

let pp fmt s =
  Format.fprintf fmt "schema %s {" (Name.to_string (Schema.name s));
  List.iter (fun oc -> Format.fprintf fmt "\n  %a" pp_object oc) (Schema.objects s);
  List.iter
    (fun r -> Format.fprintf fmt "\n  %a" pp_relationship r)
    (Schema.relationships s);
  Format.pp_print_string fmt "\n}"

let to_string s = Format.asprintf "%a" pp s

let schemas_to_string schemas =
  String.concat "\n\n" (List.map to_string schemas) ^ "\n"

let save path schemas =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (schemas_to_string schemas))
