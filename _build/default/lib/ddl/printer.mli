(** Pretty-printer for the ECR data description language.

    [Parser.schema_of_string (Printer.to_string s)] equals [s] for every
    well-formed schema — the round-trip property tested in
    [test/test_ddl.ml]. *)

val to_string : Ecr.Schema.t -> string
(** Renders one schema in the grammar accepted by {!Parser}. *)

val schemas_to_string : Ecr.Schema.t list -> string

val save : string -> Ecr.Schema.t list -> unit
(** [save path schemas] writes a DDL file. *)

val pp : Format.formatter -> Ecr.Schema.t -> unit
