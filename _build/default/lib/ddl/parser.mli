(** Recursive-descent parser for the ECR data description language.

    Grammar (EBNF; [--] comments and whitespace are free):
    {v
    file         ::= schema* EOF
    schema       ::= "schema" IDENT "{" structure* "}"
    structure    ::= entity | category | relationship
    entity       ::= "entity" IDENT body
    category     ::= "category" IDENT "of" IDENT ("," IDENT)* body
    relationship ::= "relationship" IDENT
                     "(" participant ("," participant)* ")" body
    participant  ::= (IDENT ":")? IDENT cardinality
    cardinality  ::= "(" INT "," (INT | "N") ")"
    body         ::= "{" attribute* "}" | ";"
    attribute    ::= IDENT ":" domain ("key")? ";"
    domain       ::= IDENT | IDENT "(" IDENT ("," IDENT)* ")"
    v}

    Example:
    {v
    schema sc1 {
      entity Student {
        Name : char key;
        GPA  : real;
      }
      entity Department {
        Name : char key;
      }
      relationship Majors (Student (1,1), Department (0,N)) {
        Minor : char;
      }
    }
    v} *)

exception Error of string * int * int
(** [Error (message, line, col)] — syntax error with 1-based position. *)

val schemas_of_string : string -> Ecr.Schema.t list
(** Parses a whole DDL file (zero or more schemas).
    @raise Error on syntax errors
    @raise Ecr.Name.Invalid never — identifiers are validated lexically *)

val schema_of_string : string -> Ecr.Schema.t
(** Parses exactly one schema.  @raise Error otherwise. *)

val schemas_of_file : string -> Ecr.Schema.t list
(** Reads and parses a file.  @raise Sys_error on IO failure. *)
