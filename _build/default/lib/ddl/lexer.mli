(** Lexer for the ECR data description language.

    The DDL is the textual form of the schemas the tool's Schema
    Collection screens build interactively; see {!Parser} for the
    grammar.  Comments run from [--] to end of line. *)

type token =
  | Ident of string
  | Int of int
  | Kw_schema
  | Kw_entity
  | Kw_category
  | Kw_relationship
  | Kw_of
  | Kw_key
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Colon
  | Semi
  | Comma
  | Eof

type located = { token : token; line : int; col : int }

exception Error of string * int * int
(** [Error (message, line, col)] — lexical error with 1-based position. *)

val tokenize : string -> located list
(** Turns source text into a token stream ending with {!Eof}.
    @raise Error on an illegal character. *)

val token_to_string : token -> string
