lib/workload/generator.ml: Array Attribute Cardinality Domain Ecr Fun Hashtbl Instance Int Integrate List Name Object_class Option Printf Prng Qname Relationship Schema Set String
