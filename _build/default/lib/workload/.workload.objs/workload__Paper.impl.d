lib/workload/paper.ml: Attribute Cardinality Ecr Integrate List Name Object_class Printf Qname Relationship Schema
