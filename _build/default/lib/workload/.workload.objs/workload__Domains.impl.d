lib/workload/domains.ml: Attribute Cardinality Ecr Integrate List Name Object_class Printf Qname Relationship Schema
