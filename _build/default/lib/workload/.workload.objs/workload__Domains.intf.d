lib/workload/domains.mli: Ecr Integrate
