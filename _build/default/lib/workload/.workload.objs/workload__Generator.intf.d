lib/workload/generator.mli: Ecr Instance Integrate
