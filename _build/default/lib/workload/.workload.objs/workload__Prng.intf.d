lib/workload/prng.mli:
