lib/workload/paper.mli: Ecr Integrate
