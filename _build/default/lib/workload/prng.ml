type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.mul (Int64.of_int (seed + 1)) 0x2545F4914F6CDD1DL }

let next g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next g) 1) (Int64.of_int n))

let float g =
  Int64.to_float (Int64.shift_right_logical (next g) 11) /. 9007199254740992.0

let bool g p = float g < p

let pick g = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int g (List.length xs))

let sample g p xs = List.filter (fun _ -> bool g p) xs

let shuffle g xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let split g = { state = next g }
