(** Deterministic pseudo-random numbers (SplitMix64).

    The benchmark harness must regenerate identical workloads across
    runs and platforms, so we carry our own tiny generator instead of
    [Random] (whose sequence is not guaranteed across OCaml versions). *)

type t

val create : int -> t
(** A generator seeded deterministically. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  @raise Invalid_argument when
    [n <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool g p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice.  @raise Invalid_argument on an empty list. *)

val sample : t -> float -> 'a list -> 'a list
(** Keeps each element independently with the given probability. *)

val shuffle : t -> 'a list -> 'a list

val split : t -> t
(** An independent generator derived from this one's state. *)
