(** The paper's own example schemas and sessions.

    Everything on the figures and screens of the paper: the input
    schemas [sc1] (Figure 3) and [sc2] (Figure 4), the conflict example
    schemas [sc3]/[sc4] (Screen 9), the five small schema pairs of
    Figures 2a–2e, and the equivalences/assertions that reproduce the
    integrated schema of Figure 5 / Screen 10.

    Where the paper under-specifies (the attribute of the [Majors]
    relationship, [Faculty]'s second attribute), we pick names that are
    consistent with every number the paper does print; these choices are
    documented in EXPERIMENTS.md. *)

val sc1 : Ecr.Schema.t
(** Figure 3: [Student](Name!, GPA), [Department](Name!), binary
    [Majors] with one attribute. *)

val sc2 : Ecr.Schema.t
(** Figure 4: [Department](Name!), [Faculty](Name!, Rank),
    [Grad_student](Name!, GPA, Support_type), [Major_in], [Works]. *)

val sc3 : Ecr.Schema.t
(** Screen 9's left schema: [Instructor]. *)

val sc4 : Ecr.Schema.t
(** Screen 9's right schema: [Student] with category [Grad_student]. *)

val equivalences : (Ecr.Qname.Attr.t * Ecr.Qname.Attr.t) list
(** The ACS declarations of the worked example: Name and GPA across
    Student/Grad_student, Name across the Departments, Name across
    Student/Faculty, and the Majors/Major_in relationship attribute. *)

val object_assertions : (Ecr.Qname.t * Integrate.Assertion.t * Ecr.Qname.t) list
(** Department equals Department; Student contains Grad_student;
    Student may-be Faculty (the "likely set of assertions" behind
    Figure 5). *)

val relationship_assertions :
  (Ecr.Qname.t * Integrate.Assertion.t * Ecr.Qname.t) list
(** Majors equals Major_in. *)

val naming : Integrate.Naming.t
(** Default naming plus the single override pinning the merged
    relationship's name to the paper's [E_Stud_Majo]. *)

val integrate_sc1_sc2 : unit -> Integrate.Result.t
(** Runs the full pipeline on the worked example.  Raises [Failure] on
    an assertion conflict (which would indicate a bug — the example is
    consistent). *)

(** {1 Figure 2 miniatures}

    Each pair is (left schema, right schema, the object pair asserted,
    the assertion); integrating each reproduces Figures 2a–2e. *)

type mini = {
  label : string;  (** e.g. "Figure 2a" *)
  left : Ecr.Schema.t;
  right : Ecr.Schema.t;
  pair : Ecr.Qname.t * Ecr.Qname.t;
  assertion : Integrate.Assertion.t;
  equivalences : (Ecr.Qname.Attr.t * Ecr.Qname.Attr.t) list;
  expect : string;  (** the paper's stated outcome, for display *)
}

val fig2a : mini
val fig2b : mini
val fig2c : mini
val fig2d : mini
val fig2e : mini
val fig2 : mini list

val integrate_mini : mini -> Integrate.Result.t
