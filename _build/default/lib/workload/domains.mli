(** Hand-written realistic schema families.

    Two domains the schema-integration literature of the era used
    constantly, sized like real design exercises rather than the paper's
    four-object examples.  Each comes with the session (equivalences +
    assertions) a knowledgeable DDA would enter, so examples, tests and
    benchmarks can integrate them deterministically.

    The {e university} family is a logical-database-design scenario:
    three user views of one campus database.  The {e company} family is
    a global-schema-design scenario: three departmental databases
    (personnel, payroll, projects) to federate. *)

type session = {
  schemas : Ecr.Schema.t list;
  equivalences : (Ecr.Qname.Attr.t * Ecr.Qname.Attr.t) list;
  object_assertions : (Ecr.Qname.t * Integrate.Assertion.t * Ecr.Qname.t) list;
  relationship_assertions :
    (Ecr.Qname.t * Integrate.Assertion.t * Ecr.Qname.t) list;
}

val university : session
(** Views [registrar] (Student, Course, Instructor, Section, Enrolled,
    Teaches), [library] (Borrower, Book, Loan) and [housing] (Resident,
    Hall, Lives_in).  Borrowers and residents are students; instructors
    may be graduate students. *)

val company : session
(** Databases [personnel] (Employee, Manager, Department, Works_in,
    Reports_to), [payroll] (Staff, Paycheck, Paid_by) and [projects]
    (Worker, Project, Assigned, Sponsor). *)

val integrate : ?name:string -> session -> Integrate.Result.t
(** Runs the recorded session through the pipeline.
    @raise Failure if the recorded assertions conflict (they do not). *)

val dda : session -> Integrate.Dda.t
(** A scripted oracle answering exactly the recorded session. *)
