open Ecr

module Oid = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let to_int oid = oid
  let pp fmt oid = Format.fprintf fmt "#%d" oid

  module Set = Stdlib.Set.Make (Int)
  module Map = Stdlib.Map.Make (Int)
end

type tuple = Value.t Name.Map.t

let tuple bindings =
  List.fold_left
    (fun m (k, v) -> Name.Map.add (Name.v k) v m)
    Name.Map.empty bindings

type link = { participants : Oid.t list; values : tuple }

type t = {
  schema : Schema.t;
  next_oid : int;
  (* Direct membership: class name -> oids placed in the class itself
     (extent queries add the members of descendants). *)
  members : Oid.Set.t Name.Map.t;
  values : tuple Oid.Map.t;
  links : link list Name.Map.t;
}

exception Violation of string

let violation fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

let create schema =
  {
    schema;
    next_oid = 1;
    members = Name.Map.empty;
    values = Oid.Map.empty;
    links = Name.Map.empty;
  }

let schema store = store.schema

let require_class store cls =
  match Schema.find_object cls store.schema with
  | Some oc -> oc
  | None -> violation "unknown object class %s" (Name.to_string cls)

let direct_members store cls =
  Option.value ~default:Oid.Set.empty (Name.Map.find_opt cls store.members)

let add_member cls oid store =
  let set = Oid.Set.add oid (direct_members store cls) in
  { store with members = Name.Map.add cls set store.members }

(* Membership propagates up the IS-A chain: an entity placed in a
   category belongs to every ancestor class. *)
let place oid cls store =
  let ancestors = Schema.ancestors store.schema cls in
  List.fold_left (fun st c -> add_member c oid st) (add_member cls oid store)
    ancestors

let insert cls values store =
  ignore (require_class store cls);
  let oid = store.next_oid in
  let store = { store with next_oid = oid + 1 } in
  let store = place oid cls store in
  ({ store with values = Oid.Map.add oid values store.values }, oid)

let classify oid cls store =
  ignore (require_class store cls);
  if not (Oid.Map.mem oid store.values) then
    violation "unknown entity #%d" oid
  else place oid cls store

let set_value oid attr v store =
  match Oid.Map.find_opt oid store.values with
  | None -> violation "unknown entity #%d" oid
  | Some tup ->
      { store with values = Oid.Map.add oid (Name.Map.add attr v tup) store.values }

let relate rel oids values store =
  match Schema.find_relationship rel store.schema with
  | None -> violation "unknown relationship %s" (Name.to_string rel)
  | Some r ->
      let arity = Relationship.arity r in
      if List.length oids <> arity then
        violation "relationship %s expects %d participants, got %d"
          (Name.to_string rel) arity (List.length oids)
      else
        let existing =
          Option.value ~default:[] (Name.Map.find_opt rel store.links)
        in
        let entry = { participants = oids; values } in
        { store with links = Name.Map.add rel (entry :: existing) store.links }

let remove_entity oid store =
  if not (Oid.Map.mem oid store.values) then store
  else
    {
      store with
      members = Name.Map.map (Oid.Set.remove oid) store.members;
      values = Oid.Map.remove oid store.values;
      links =
        Name.Map.map
          (List.filter (fun l -> not (List.exists (Oid.equal oid) l.participants)))
          store.links;
    }

let remove_links rel keep store =
  if Schema.find_relationship rel store.schema = None then
    violation "unknown relationship %s" (Name.to_string rel)
  else
    {
      store with
      links =
        Name.Map.update rel
          (Option.map (List.filter keep))
          store.links;
    }

let extent cls store =
  ignore (require_class store cls);
  let below = cls :: Schema.descendants store.schema cls in
  List.fold_left
    (fun acc c -> Oid.Set.union acc (direct_members store c))
    Oid.Set.empty below

let tuple_of oid store =
  Option.value ~default:Name.Map.empty (Oid.Map.find_opt oid store.values)

let value oid attr store =
  Option.value ~default:Value.Null (Name.Map.find_opt attr (tuple_of oid store))

let links rel store =
  if Schema.find_relationship rel store.schema = None then
    violation "unknown relationship %s" (Name.to_string rel)
  else List.rev (Option.value ~default:[] (Name.Map.find_opt rel store.links))

let entities store = List.map fst (Oid.Map.bindings store.values)

let classes_of oid store =
  Name.Map.fold
    (fun cls members acc -> if Oid.Set.mem oid members then cls :: acc else acc)
    store.members []
  |> List.rev
let cardinality_of cls store = Oid.Set.cardinal (extent cls store)

type violation =
  | Bad_domain of Oid.t * Name.t * Value.t
  | Duplicate_key of Name.t * Name.t * Value.t
  | Not_in_parent of Oid.t * Name.t * Name.t
  | Cardinality_violation of Name.t * Name.t * Oid.t * int
  | Dangling_participant of Name.t * Oid.t

let check_domains store =
  List.concat_map
    (fun oc ->
      let cls = oc.Object_class.name in
      let attrs = Schema.all_attributes store.schema cls in
      Oid.Set.fold
        (fun oid acc ->
          List.fold_left
            (fun acc a ->
              let v = value oid a.Attribute.name store in
              if Value.conforms v a.Attribute.domain then acc
              else Bad_domain (oid, a.Attribute.name, v) :: acc)
            acc attrs)
        (direct_members store cls)
        [])
    (Schema.objects store.schema)

let check_keys store =
  List.concat_map
    (fun oc ->
      let cls = oc.Object_class.name in
      let keys = Attribute.keys (Schema.all_attributes store.schema cls) in
      List.concat_map
        (fun key ->
          let attr = key.Attribute.name in
          let seen = Hashtbl.create 16 in
          Oid.Set.fold
            (fun oid acc ->
              let v = value oid attr store in
              if Value.equal v Value.Null then acc
              else
                let repr = Value.to_string v in
                if Hashtbl.mem seen repr then
                  Duplicate_key (cls, attr, v) :: acc
                else begin
                  Hashtbl.add seen repr ();
                  acc
                end)
            (extent cls store) [])
        keys)
    (Schema.entities store.schema)

let check_category_subset store =
  List.concat_map
    (fun oc ->
      let cls = oc.Object_class.name in
      List.concat_map
        (fun parent ->
          match Schema.find_object parent store.schema with
          | None -> []
          | Some _ ->
              Oid.Set.fold
                (fun oid acc ->
                  if Oid.Set.mem oid (extent parent store) then acc
                  else Not_in_parent (oid, cls, parent) :: acc)
                (extent cls store) [])
        (Object_class.parents oc))
    (Schema.categories store.schema)

let check_links store =
  List.concat_map
    (fun r ->
      let rel = r.Relationship.name in
      let instances = links rel store in
      (* Dangling participants. *)
      let dangling =
        List.concat_map
          (fun { participants; _ } ->
            List.concat
              (List.map2
                 (fun p oid ->
                   if Oid.Set.mem oid (extent p.Relationship.obj store) then []
                   else [ Dangling_participant (rel, oid) ])
                 r.Relationship.participants participants))
          instances
      in
      (* Per-participant cardinality: every member of the class must
         appear in between min and max instances. *)
      let cardinality =
        List.concat
          (List.mapi
             (fun pos p ->
               let counts = Hashtbl.create 64 in
               List.iter
                 (fun { participants; _ } ->
                   let oid = List.nth participants pos in
                   Hashtbl.replace counts oid
                     (1 + Option.value ~default:0 (Hashtbl.find_opt counts oid)))
                 instances;
               Oid.Set.fold
                 (fun oid acc ->
                   let k = Option.value ~default:0 (Hashtbl.find_opt counts oid) in
                   if Cardinality.satisfied k p.Relationship.card then acc
                   else
                     Cardinality_violation (rel, p.Relationship.obj, oid, k)
                     :: acc)
                 (extent p.Relationship.obj store)
                 [])
             r.Relationship.participants)
      in
      dangling @ cardinality)
    (Schema.relationships store.schema)

let check store =
  check_domains store @ check_keys store @ check_category_subset store
  @ check_links store

let violation_to_string = function
  | Bad_domain (oid, attr, v) ->
      Printf.sprintf "entity #%d: value %s outside domain of %s"
        (Oid.to_int oid) (Value.to_string v) (Name.to_string attr)
  | Duplicate_key (cls, attr, v) ->
      Printf.sprintf "entity set %s: duplicate key %s = %s"
        (Name.to_string cls) (Name.to_string attr) (Value.to_string v)
  | Not_in_parent (oid, cat, parent) ->
      Printf.sprintf "entity #%d in category %s but not in parent %s"
        (Oid.to_int oid) (Name.to_string cat) (Name.to_string parent)
  | Cardinality_violation (rel, cls, oid, k) ->
      Printf.sprintf
        "relationship %s: entity #%d of %s participates %d times, outside its \
         structural constraint"
        (Name.to_string rel) (Oid.to_int oid) (Name.to_string cls) k
  | Dangling_participant (rel, oid) ->
      Printf.sprintf "relationship %s references #%d outside participant class"
        (Name.to_string rel) (Oid.to_int oid)
