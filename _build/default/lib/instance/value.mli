(** Typed attribute values for the extensional (instance) substrate.

    The paper assumes operational databases behind the component schemas;
    this module is the value layer of our simulation of those databases,
    used to check that generated mappings preserve query answers. *)

type t =
  | Str of string
  | Int of int
  | Real of float
  | Bool of bool
  | Date of int * int * int  (** year, month, day *)
  | Null

val equal : t -> t -> bool
val compare : t -> t -> int

val conforms : t -> Ecr.Domain.t -> bool
(** [conforms v d] is [true] when [v] is a legal value of domain [d]
    ([Null] conforms to every domain; [Int] conforms to [Real]). *)

val coerce : t -> Ecr.Domain.t -> t option
(** [coerce v d] converts [v] into domain [d] when a lossless conversion
    exists (e.g. [Int 3] to [Real] becomes [Real 3.]). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val str : string -> t
val int : int -> t
val real : float -> t
val bool : bool -> t
val date : int -> int -> int -> t
