type t =
  | Str of string
  | Int of int
  | Real of float
  | Bool of bool
  | Date of int * int * int
  | Null

let equal a b =
  match (a, b) with
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Int x, Real y | Real y, Int x -> Float.equal (float_of_int x) y
  | Bool x, Bool y -> x = y
  | Date (y1, m1, d1), Date (y2, m2, d2) -> y1 = y2 && m1 = m2 && d1 = d2
  | Null, Null -> true
  | (Str _ | Int _ | Real _ | Bool _ | Date _ | Null), _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Real _ -> 2 (* Int and Real compare numerically *)
  | Str _ -> 3
  | Date _ -> 4

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Int x, Real y -> Float.compare (float_of_int x) y
  | Real x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Date (y1, m1, d1), Date (y2, m2, d2) ->
      Stdlib.compare (y1, m1, d1) (y2, m2, d2)
  | Null, Null -> 0
  | _ -> Int.compare (rank a) (rank b)

let valid_date y m d =
  y >= 0 && m >= 1 && m <= 12 && d >= 1 && d <= 31

let conforms v dom =
  match (v, dom) with
  | Null, _ -> true
  | Str _, Ecr.Domain.Char_string -> true
  | Str s, Ecr.Domain.Enum values -> List.exists (String.equal s) values
  | Int _, (Ecr.Domain.Integer | Ecr.Domain.Real) -> true
  | Real _, Ecr.Domain.Real -> true
  | Bool _, Ecr.Domain.Boolean -> true
  | Date (y, m, d), Ecr.Domain.Date -> valid_date y m d
  | _, Ecr.Domain.Named _ -> true (* opaque domains accept anything *)
  | (Str _ | Int _ | Real _ | Bool _ | Date _), _ -> false

let coerce v dom =
  if conforms v dom then
    match (v, dom) with
    | Int x, Ecr.Domain.Real -> Some (Real (float_of_int x))
    | _ -> Some v
  else
    match (v, dom) with
    | Real x, Ecr.Domain.Integer when Float.is_integer x ->
        Some (Int (int_of_float x))
    | _ -> None

let to_string = function
  | Str s -> "\"" ^ s ^ "\""
  | Int n -> string_of_int n
  | Real x -> Printf.sprintf "%g" x
  | Bool b -> string_of_bool b
  | Date (y, m, d) -> Printf.sprintf "%04d-%02d-%02d" y m d
  | Null -> "null"

let pp fmt v = Format.pp_print_string fmt (to_string v)

let str s = Str s
let int n = Int n
let real x = Real x
let bool b = Bool b
let date y m d = Date (y, m, d)
