(** Extensional store: a database instance for one ECR schema.

    The store simulates the operational databases that the paper's two
    integration contexts assume (user views over one database; component
    databases under a global schema).  It is deliberately simple — an
    in-memory, persistent (immutable) structure — but enforces the full
    ECR semantics: category extents are subsets of their parents'
    extents, keys are unique within an entity set, values conform to
    attribute domains, and relationship participation respects the
    structural constraints. *)

module Oid : sig
  type t
  (** Entity instance identifier, unique within one store. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_int : t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Stdlib.Set.S with type elt = t
  module Map : Stdlib.Map.S with type key = t
end

type tuple = Value.t Ecr.Name.Map.t
(** Attribute name -> value. *)

val tuple : (string * Value.t) list -> tuple

type link = { participants : Oid.t list; values : tuple }
(** One relationship instance; [participants] are in the relationship's
    declared participant order. *)

type t

val create : Ecr.Schema.t -> t
(** An empty instance of the given schema. *)

val schema : t -> Ecr.Schema.t

exception Violation of string
(** Raised by insertion operations on structurally impossible requests
    (unknown class, wrong arity); soft integrity violations are instead
    reported by {!check}. *)

(** {1 Population} *)

val insert : Ecr.Name.t -> tuple -> t -> t * Oid.t
(** [insert cls values store] creates a fresh entity that is a member of
    [cls] and, transitively, of all ancestors of [cls].
    @raise Violation when [cls] is not an object class of the schema. *)

val classify : Oid.t -> Ecr.Name.t -> t -> t
(** [classify oid category store] additionally places an existing entity
    into [category] (and its ancestors).
    @raise Violation when [oid] or [category] is unknown. *)

val set_value : Oid.t -> Ecr.Name.t -> Value.t -> t -> t
(** Updates one attribute of an entity. @raise Violation on unknown oid. *)

val relate : Ecr.Name.t -> Oid.t list -> tuple -> t -> t
(** [relate rel oids values store] adds a relationship instance.
    @raise Violation when [rel] is unknown or the arity mismatches. *)

val remove_entity : Oid.t -> t -> t
(** Deletes an entity from every class and removes every relationship
    instance it participates in.  A no-op on unknown oids. *)

val remove_links : Ecr.Name.t -> (link -> bool) -> t -> t
(** [remove_links rel keep store] drops the instances of [rel] for which
    [keep] is [false].  @raise Violation on unknown relationship. *)

(** {1 Interrogation} *)

val extent : Ecr.Name.t -> t -> Oid.Set.t
(** Members of an object class, including members via subcategories.
    @raise Violation on unknown class. *)

val tuple_of : Oid.t -> t -> tuple
(** All attribute values of an entity (empty map for unset attributes). *)

val value : Oid.t -> Ecr.Name.t -> t -> Value.t
(** [value oid attr store] is the stored value or [Null]. *)

val links : Ecr.Name.t -> t -> link list
(** Instances of a relationship set. @raise Violation on unknown name. *)

val entities : t -> Oid.t list
(** Every entity in the store. *)

val classes_of : Oid.t -> t -> Ecr.Name.t list
(** The classes an entity was directly placed in (by {!insert} or
    {!classify}), most specific placements included; ancestors reached
    only through propagation are included too. *)

val cardinality_of : Ecr.Name.t -> t -> int
(** [cardinality_of cls store] is the extent size. *)

(** {1 Integrity} *)

type violation =
  | Bad_domain of Oid.t * Ecr.Name.t * Value.t  (** value outside domain *)
  | Duplicate_key of Ecr.Name.t * Ecr.Name.t * Value.t
      (** entity set, key attribute, duplicated value *)
  | Not_in_parent of Oid.t * Ecr.Name.t * Ecr.Name.t
      (** entity, category, parent it is missing from *)
  | Cardinality_violation of Ecr.Name.t * Ecr.Name.t * Oid.t * int
      (** relationship, participant class, entity, observed count *)
  | Dangling_participant of Ecr.Name.t * Oid.t
      (** relationship instance references an entity outside the
          participant's class *)

val check : t -> violation list
(** All integrity violations in the store; empty means consistent. *)

val violation_to_string : violation -> string
