lib/instance/value.mli: Ecr Format
