lib/instance/value.ml: Bool Ecr Float Format Int List Printf Stdlib String
