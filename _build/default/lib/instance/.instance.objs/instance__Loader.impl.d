lib/instance/loader.ml: Buffer Ecr Fun Hashtbl List Name Option Printf Relationship Schema Store String Value
