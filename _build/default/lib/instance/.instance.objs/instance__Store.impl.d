lib/instance/store.ml: Attribute Cardinality Ecr Format Hashtbl Int List Name Object_class Option Printf Relationship Schema Stdlib Value
