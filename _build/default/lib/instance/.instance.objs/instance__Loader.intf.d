lib/instance/loader.mli: Ecr Store
