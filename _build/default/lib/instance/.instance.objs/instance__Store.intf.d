lib/instance/store.mli: Ecr Format Stdlib Value
