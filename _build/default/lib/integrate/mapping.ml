open Ecr

type attr_target = { in_class : Name.t; as_attr : Name.t }

type entry = {
  source : Qname.t;
  target : Name.t;
  attrs : attr_target Name.Map.t;
}

type t = { objects : entry Qname.Map.t; relationships : entry Qname.Map.t }

let empty = { objects = Qname.Map.empty; relationships = Qname.Map.empty }

let add_object e t = { t with objects = Qname.Map.add e.source e t.objects }

let add_relationship e t =
  { t with relationships = Qname.Map.add e.source e t.relationships }

let object_entry q t = Qname.Map.find_opt q t.objects
let relationship_entry q t = Qname.Map.find_opt q t.relationships
let object_target q t = Option.map (fun e -> e.target) (object_entry q t)

let attr_target q attr t =
  Option.bind (object_entry q t) (fun e -> Name.Map.find_opt attr e.attrs)

let relationship_attr_target q attr t =
  Option.bind (relationship_entry q t) (fun e -> Name.Map.find_opt attr e.attrs)

let objects_into target t =
  Qname.Map.fold
    (fun _ e acc -> if Name.equal e.target target then e :: acc else acc)
    t.objects []
  |> List.sort (fun a b -> Qname.compare a.source b.source)

let relationships_into target t =
  Qname.Map.fold
    (fun _ e acc -> if Name.equal e.target target then e :: acc else acc)
    t.relationships []
  |> List.sort (fun a b -> Qname.compare a.source b.source)

let object_entries t = List.map snd (Qname.Map.bindings t.objects)
let relationship_entries t = List.map snd (Qname.Map.bindings t.relationships)

let pp_entry fmt e =
  Format.fprintf fmt "@[<v 2>%s -> %s" (Qname.to_string e.source)
    (Name.to_string e.target);
  Name.Map.iter
    (fun a target ->
      Format.fprintf fmt "@,. %s -> %s.%s" (Name.to_string a)
        (Name.to_string target.in_class)
        (Name.to_string target.as_attr))
    e.attrs;
  Format.fprintf fmt "@]"

let pp fmt t =
  Format.fprintf fmt "@[<v 0>objects:@,";
  List.iter (fun e -> Format.fprintf fmt "  %a@," pp_entry e) (object_entries t);
  Format.fprintf fmt "relationships:@,";
  List.iter
    (fun e -> Format.fprintf fmt "  %a@," pp_entry e)
    (relationship_entries t);
  Format.fprintf fmt "@]"
