open Ecr

type placed_attr = { attr : Attribute.t; components : Qname.Attr.t list }

type node = {
  id : Name.t;
  members : Qname.t list;
  derived_children : Name.t list;
  parents : Name.t list;
  attributes : placed_attr list;
}

type t = {
  nodes : node list;
  node_of_class : Name.t Qname.Map.t;
  warnings : string list;
}

(* ------------------------------------------------------------------ *)
(* Small persistent union-find over qualified names.                   *)

module Uf = struct
  type t = Qname.t Qname.Map.t

  let empty : t = Qname.Map.empty

  let rec find uf x =
    match Qname.Map.find_opt x uf with
    | None -> x
    | Some p -> if Qname.equal p x then x else find uf p

  let union ~prefer uf a b =
    let ra = find uf a and rb = find uf b in
    if Qname.equal ra rb then uf
    else begin
      (* keep the representative the caller prefers (the earliest class
         in declaration order), for deterministic naming *)
      let keep, absorb = if prefer ra rb then (ra, rb) else (rb, ra) in
      Qname.Map.add absorb keep uf
    end
end

(* ------------------------------------------------------------------ *)

let build ?(naming = Naming.default) ~schemas ~equivalence ~matrix () =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in

  (* Universe of object classes, in (schema, declaration) order. *)
  let universe =
    List.concat_map
      (fun s -> List.map (fun oc -> (Schema.qname s oc.Object_class.name, s, oc)) (Schema.objects s))
      schemas
  in
  let index_of =
    List.fold_left
      (fun (i, m) (q, _, _) -> (i + 1, Qname.Map.add q i m))
      (0, Qname.Map.empty) universe
    |> snd
  in
  let order q =
    Option.value ~default:max_int (Qname.Map.find_opt q index_of)
  in
  let attr_def =
    (* qualified attribute -> (definition, position) *)
    let table = Hashtbl.create 64 in
    List.iter
      (fun (q, _, oc) ->
        List.iteri
          (fun i a ->
            Hashtbl.replace table
              (Qname.Attr.to_string (Qname.Attr.make q a.Attribute.name))
              (a, i))
          oc.Object_class.attributes)
      universe;
    table
  in
  let find_attr qa = Hashtbl.find_opt attr_def (Qname.Attr.to_string qa) in

  let edges = Assertions.integration_edges matrix in

  (* --- 1. equals-merge ------------------------------------------- *)
  let prefer a b = order a <= order b in
  let uf =
    List.fold_left
      (fun uf (a, b, assertion) ->
        match assertion with
        | Assertion.Equal -> Uf.union ~prefer uf a b
        | _ -> uf)
      Uf.empty edges
  in
  let rep q = Uf.find uf q in
  (* groups: representative -> sorted members *)
  let groups =
    List.fold_left
      (fun acc (q, _, _) ->
        let r = rep q in
        let cur = Option.value ~default:[] (Qname.Map.find_opt r acc) in
        Qname.Map.add r (q :: cur) acc)
      Qname.Map.empty universe
  in
  let group_list =
    Qname.Map.bindings groups
    |> List.map (fun (r, members) ->
           (r, List.sort (fun a b -> Int.compare (order a) (order b)) members))
    |> List.sort (fun (a, _) (b, _) -> Int.compare (order a) (order b))
  in

  (* --- 2. name the group nodes ----------------------------------- *)
  let used = ref Name.Set.empty in
  let claim n =
    let n' = Naming.uniquify !used n in
    used := Name.Set.add n' !used;
    n'
  in
  let group_names =
    List.map
      (fun (r, members) ->
        let desired =
          match members with
          | [ only ] ->
              if Name.Set.mem only.Qname.obj !used then Naming.qualified only
              else only.Qname.obj
          | _ -> Naming.equivalent_name naming members
        in
        let final = claim desired in
        (r, members, final))
      group_list
  in
  let node_of_class =
    List.fold_left
      (fun acc (_, members, final) ->
        List.fold_left (fun acc m -> Qname.Map.add m final acc) acc members)
      Qname.Map.empty group_names
  in
  let group_id q = Qname.Map.find (rep q) node_of_class in

  (* --- 3. IS-A edges and derived nodes ---------------------------- *)
  let lt_edges =
    List.filter_map
      (fun (a, b, assertion) ->
        match assertion with
        | Assertion.Contained_in -> Some (group_id a, group_id b)
        | Assertion.Contains -> Some (group_id b, group_id a)
        | _ -> None)
      edges
    |> List.filter (fun (c, p) -> not (Name.equal c p))
    |> List.sort_uniq compare
  in
  let gen_pairs =
    List.filter_map
      (fun (a, b, assertion) ->
        match assertion with
        | Assertion.May_be | Assertion.Disjoint_integrable ->
            let ga = group_id a and gb = group_id b in
            if Name.equal ga gb then begin
              warn "generalisation of %s and %s collapsed into one node"
                (Qname.to_string a) (Qname.to_string b);
              None
            end
            else Some (a, b, ga, gb)
        | _ -> None)
      edges
  in
  (* dedup generalisation pairs at the group level *)
  let gen_pairs =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (_, _, ga, gb) ->
        let key =
          if Name.compare ga gb <= 0 then (ga, gb) else (gb, ga)
        in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      gen_pairs
  in
  let derived_nodes =
    List.map
      (fun (qa, qb, ga, gb) ->
        let id = claim (Naming.derived_name naming qa qb) in
        (id, ga, gb))
      gen_pairs
  in

  (* --- 4. parent map and transitive reduction --------------------- *)
  let parents_raw =
    let add child parent m =
      let cur = Option.value ~default:Name.Set.empty (Name.Map.find_opt child m) in
      Name.Map.add child (Name.Set.add parent cur) m
    in
    let m =
      List.fold_left (fun m (c, p) -> add c p m) Name.Map.empty lt_edges
    in
    List.fold_left
      (fun m (d, ga, gb) -> add ga d (add gb d m))
      m derived_nodes
  in
  let parents_of id =
    Option.value ~default:Name.Set.empty (Name.Map.find_opt id parents_raw)
    |> Name.Set.elements
  in
  let rec ancestors_of ?(seen = Name.Set.empty) id =
    List.fold_left
      (fun seen p ->
        if Name.Set.mem p seen then seen
        else ancestors_of ~seen:(Name.Set.add p seen) p)
      seen (parents_of id)
  in
  let reduced_parents id =
    let ps = parents_of id in
    List.filter
      (fun p ->
        not
          (List.exists
             (fun p' ->
               (not (Name.equal p p')) && Name.Set.mem p (ancestors_of p'))
             ps))
      ps
  in

  (* --- 5. attribute placement ------------------------------------ *)
  let object_attr owner = Qname.Map.mem owner index_of in
  let node_order =
    (* creation order of all node ids, for deterministic tie-breaks *)
    let ids =
      List.map (fun (_, _, final) -> final) group_names
      @ List.map (fun (id, _, _) -> id) derived_nodes
    in
    List.fold_left
      (fun (i, m) id -> (i + 1, Name.Map.add id i m))
      (0, Name.Map.empty) ids
    |> snd
  in
  let attrs_at : (string, placed_attr list) Hashtbl.t = Hashtbl.create 32 in
  let attrs_of_node id =
    Option.value ~default:[] (Hashtbl.find_opt attrs_at (Name.to_string id))
  in
  let place id pa =
    Hashtbl.replace attrs_at (Name.to_string id) (attrs_of_node id @ [ pa ])
  in
  let attr_sort_key qa =
    match find_attr qa with
    | Some (_, pos) -> (order qa.Qname.Attr.owner, pos)
    | None -> (max_int, max_int)
  in
  let make_merged comps =
    let comps =
      List.sort (fun a b -> compare (attr_sort_key a) (attr_sort_key b)) comps
    in
    let defs = List.filter_map (fun c -> Option.map fst (find_attr c)) comps in
    match (comps, defs) with
    | [], _ | _, [] -> None
    | first :: _, d0 :: drest ->
        let domain =
          List.fold_left
            (fun acc d ->
              match Domain.join acc d.Attribute.domain with
              | Some j -> j
              | None ->
                  warn "incompatible domains merged for %s"
                    (Qname.Attr.to_string first);
                  acc)
            d0.Attribute.domain drest
        in
        let key = List.for_all (fun d -> d.Attribute.key) defs in
        let name =
          if List.length comps > 1 then
            Naming.merged_attribute_name first.Qname.Attr.attr
          else first.Qname.Attr.attr
        in
        Some { attr = Attribute.make ~key name domain; components = comps }
  in
  let classes =
    (* keep only attributes of object classes in our universe *)
    Equivalence.classes equivalence
    |> List.map (List.filter (fun qa -> object_attr qa.Qname.Attr.owner))
    |> List.filter (fun cls -> cls <> [])
  in
  List.iter
    (fun cls ->
      let owner_nodes =
        List.map (fun qa -> group_id qa.Qname.Attr.owner) cls
        |> List.sort_uniq Name.compare
      in
      match owner_nodes with
      | [] -> ()
      | [ single ] -> (
          match make_merged cls with
          | Some pa -> place single pa
          | None -> ())
      | several -> (
          let anc_or_self n = Name.Set.add n (ancestors_of n) in
          let common =
            List.fold_left
              (fun acc n -> Name.Set.inter acc (anc_or_self n))
              (anc_or_self (List.hd several))
              (List.tl several)
          in
          if Name.Set.is_empty common then begin
            warn
              "attribute equivalence class of %s spans unrelated classes; \
               kept separate"
              (Qname.Attr.to_string (List.hd cls));
            List.iter
              (fun n ->
                let sub =
                  List.filter (fun qa -> Name.equal (group_id qa.Qname.Attr.owner) n) cls
                in
                match make_merged sub with
                | Some pa -> place n pa
                | None -> ())
              several
          end
          else begin
            (* lowest common dominator: common nodes that are not an
               ancestor of another common node *)
            let lowest =
              Name.Set.filter
                (fun l ->
                  not
                    (Name.Set.exists
                       (fun c ->
                         (not (Name.equal c l)) && Name.Set.mem l (ancestors_of c))
                       common))
                common
            in
            let pick =
              Name.Set.elements lowest
              |> List.sort (fun a b ->
                     Int.compare
                       (Option.value ~default:max_int (Name.Map.find_opt a node_order))
                       (Option.value ~default:max_int (Name.Map.find_opt b node_order)))
              |> List.hd
            in
            match make_merged cls with
            | Some pa -> place pick pa
            | None -> ()
          end))
    classes;

  (* --- 6. assemble nodes ------------------------------------------ *)
  let uniquify_attrs attrs =
    let used = ref Name.Set.empty in
    List.map
      (fun pa ->
        let n = Naming.uniquify !used pa.attr.Attribute.name in
        used := Name.Set.add n !used;
        { pa with attr = Attribute.rename n pa.attr })
      attrs
  in
  let group_nodes =
    List.map
      (fun (_, members, id) ->
        {
          id;
          members;
          derived_children = [];
          parents = reduced_parents id;
          attributes = uniquify_attrs (attrs_of_node id);
        })
      group_names
  in
  let derived =
    List.map
      (fun (id, ga, gb) ->
        {
          id;
          members = [];
          derived_children = [ ga; gb ];
          parents = reduced_parents id;
          attributes = uniquify_attrs (attrs_of_node id);
        })
      derived_nodes
  in
  {
    nodes = group_nodes @ derived;
    node_of_class;
    warnings = List.rev !warnings;
  }

(* ------------------------------------------------------------------ *)
(* Queries.                                                            *)

let node t id = List.find_opt (fun n -> Name.equal n.id id) t.nodes
let node_of t q = Qname.Map.find_opt q t.node_of_class

let parents t id =
  match node t id with Some n -> n.parents | None -> []

let ancestors t id =
  let rec walk queued = function
    | [] -> []
    | n :: queue ->
        let ps = List.filter (fun p -> not (Name.Set.mem p queued)) (parents t n) in
        let queued = List.fold_left (fun set p -> Name.Set.add p set) queued ps in
        ps @ walk queued (queue @ ps)
  in
  walk (Name.Set.singleton id) [ id ]

let is_ancestor_or_self t ~ancestor id =
  Name.equal ancestor id || List.exists (Name.equal ancestor) (ancestors t id)

let related t a b =
  if Name.equal a b then Some a
  else if is_ancestor_or_self t ~ancestor:a b then Some a
  else if is_ancestor_or_self t ~ancestor:b a then Some b
  else None

let entity_nodes t = List.filter (fun n -> n.parents = []) t.nodes
let category_nodes t = List.filter (fun n -> n.parents <> []) t.nodes

let all_attributes t id =
  let chain = id :: ancestors t id in
  let seen = ref Name.Set.empty in
  List.concat_map
    (fun n ->
      match node t n with
      | None -> []
      | Some nd ->
          List.filter
            (fun pa ->
              let name = pa.attr.Attribute.name in
              if Name.Set.mem name !seen then false
              else begin
                seen := Name.Set.add name !seen;
                true
              end)
            nd.attributes)
    chain
