open Ecr

type t = { abbrev : int; overrides : Name.t Qname.Pair.Map.t }

let default = { abbrev = 4; overrides = Qname.Pair.Map.empty }

let with_override a b forced t =
  { t with
    overrides = Qname.Pair.Map.add (Qname.Pair.make a b) (Name.v forced) t.overrides
  }

let override_for t members =
  (* any override whose pair is a subset of the member list applies *)
  Qname.Pair.Map.fold
    (fun pair forced acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if
            List.exists (Qname.equal (Qname.Pair.fst pair)) members
            && List.exists (Qname.equal (Qname.Pair.snd pair)) members
          then Some forced
          else None)
    t.overrides None

let abbr t q = Name.abbreviate t.abbrev q.Qname.obj

let equivalent_name t members =
  match override_for t members with
  | Some forced -> forced
  | None -> (
      match members with
      | [] -> invalid_arg "Naming.equivalent_name: empty group"
      | first :: rest ->
          let all_same =
            List.for_all (fun q -> Name.equal q.Qname.obj first.Qname.obj) rest
          in
          if all_same then Name.v ("E_" ^ Name.to_string first.Qname.obj)
          else
            Name.v
              ("E_" ^ String.concat "_" (List.map (abbr t) members)))

let derived_name t a b =
  match override_for t [ a; b ] with
  | Some forced -> forced
  | None -> Name.v ("D_" ^ abbr t a ^ "_" ^ abbr t b)

let merged_attribute_name n = Name.v ("D_" ^ Name.to_string n)

let uniquify used n =
  if not (Name.Set.mem n used) then n
  else begin
    let rec try_suffix i =
      let candidate = Name.v (Name.to_string n ^ "_" ^ string_of_int i) in
      if Name.Set.mem candidate used then try_suffix (i + 1) else candidate
    in
    try_suffix 2
  end

let qualified q =
  Name.v (Name.to_string q.Qname.schema ^ "_" ^ Name.to_string q.Qname.obj)

let overrides t =
  Qname.Pair.Map.fold
    (fun pair forced acc ->
      (Qname.Pair.fst pair, Qname.Pair.snd pair, forced) :: acc)
    t.overrides []
  |> List.rev
