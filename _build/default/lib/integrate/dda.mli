(** The database designer/administrator (DDA) as an interface.

    "Specifying assertions requires interacting with the DDA and cannot
    be completely automated."  The original tool put a human behind a
    curses terminal; we additionally allow any programmatic oracle —
    scripted sessions for tests, ground-truth oracles for benchmarks,
    deliberately erroneous oracles for the conflict-detection
    experiments — by abstracting the three judgement calls the
    methodology needs. *)

type resolution =
  | Withdraw  (** abandon the new assertion, keep the matrix *)
  | Replace of Assertion.t  (** retry the pair with another assertion *)

type t = {
  label : string;  (** shown in benchmark output *)
  attr_equivalent :
    Ecr.Qname.Attr.t * Ecr.Attribute.t ->
    Ecr.Qname.Attr.t * Ecr.Attribute.t ->
    bool;
      (** "are these two attributes equivalent?" — the Equivalence Class
          Creation screen *)
  object_assertion : Ecr.Qname.t -> Ecr.Qname.t -> Assertion.t option;
      (** "enter an assertion for this pair" — [None] skips the pair
          (leaves it unconstrained) *)
  relationship_assertion : Ecr.Qname.t -> Ecr.Qname.t -> Assertion.t option;
  resolve_conflict : Assertions.conflict -> resolution;
      (** the Assertion Conflict Resolution screen *)
}

val silent : t
(** Declares nothing: no equivalences, skips every pair, withdraws on
    conflict.  A useful base for overriding individual fields. *)

val of_assertion_list :
  ?equivalences:(Ecr.Qname.Attr.t * Ecr.Qname.Attr.t) list ->
  ?relationships:(Ecr.Qname.t * Assertion.t * Ecr.Qname.t) list ->
  (Ecr.Qname.t * Assertion.t * Ecr.Qname.t) list ->
  t
(** A scripted DDA that answers from fixed lists (in either pair
    orientation) and skips pairs not listed. *)

type counters = {
  mutable attr_questions : int;
  mutable object_questions : int;
  mutable relationship_questions : int;
  mutable conflicts_seen : int;
}

val fresh_counters : unit -> counters

val counting : counters -> t -> t
(** Wraps an oracle so every question asked increments the counters —
    the measure of DDA effort used by the benchmark harness. *)
