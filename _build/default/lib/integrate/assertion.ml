type t =
  | Equal
  | Contained_in
  | Contains
  | Disjoint_integrable
  | May_be
  | Disjoint_nonintegrable

let code = function
  | Equal -> 1
  | Contained_in -> 2
  | Contains -> 3
  | Disjoint_integrable -> 4
  | May_be -> 5
  | Disjoint_nonintegrable -> 0

let of_code = function
  | 1 -> Some Equal
  | 2 -> Some Contained_in
  | 3 -> Some Contains
  | 4 -> Some Disjoint_integrable
  | 5 -> Some May_be
  | 0 -> Some Disjoint_nonintegrable
  | _ -> None

let converse = function
  | Contained_in -> Contains
  | Contains -> Contained_in
  | (Equal | Disjoint_integrable | May_be | Disjoint_nonintegrable) as a -> a

let is_disjoint = function
  | Disjoint_integrable | Disjoint_nonintegrable -> true
  | Equal | Contained_in | Contains | May_be -> false

let integrable = function
  | Disjoint_nonintegrable -> false
  | Equal | Contained_in | Contains | Disjoint_integrable | May_be -> true

let equal a b = a = b
let compare a b = Int.compare (code a) (code b)

let to_string = function
  | Equal -> "equals"
  | Contained_in -> "contained in"
  | Contains -> "contains"
  | Disjoint_integrable -> "disjoint integrable"
  | May_be -> "may be"
  | Disjoint_nonintegrable -> "disjoint nonintegrable"

let describe = function
  | Equal -> "OB_CL_name_1 'equals' OB_CL_name_2"
  | Contained_in -> "OB_CL_name_1 'contained in' OB_CL_name_2"
  | Contains -> "OB_CL_name_1 'contains' OB_CL_name_2"
  | Disjoint_integrable ->
      "OB_CL_name_1 and OB_CL_name_2 are disjoint but integratable"
  | May_be -> "OB_CL_name_1 and OB_CL_name_2 may be integratable"
  | Disjoint_nonintegrable ->
      "OB_CL_name_1 and OB_CL_name_2 are disjoint & non-integratable"

let pp fmt a = Format.pp_print_string fmt (to_string a)
