(** The outcome of Phase 4: the integrated schema, the provenance of
    every integrated structure and attribute, and the generated
    mappings.

    This record is everything the result-viewing screens (Screens
    10–12b) display: the prefix conventions ([E_] equivalent, [D_]
    derived) are derivable from {!origin}; the Component Attribute
    screens are a lookup in {!attr_components}. *)

type origin =
  | Original of Ecr.Qname.t  (** passed through (possibly renamed) *)
  | Equivalent of Ecr.Qname.t list  (** merged by "equals" *)
  | Derived of Ecr.Name.t list
      (** generated generalisation of the given integrated structures *)

type t = {
  schema : Ecr.Schema.t;  (** the integrated schema *)
  object_origin : origin Ecr.Name.Map.t;
  relationship_origin : origin Ecr.Name.Map.t;
  attr_components : Ecr.Qname.Attr.t list Ecr.Name.Map.t Ecr.Name.Map.t;
      (** integrated structure -> integrated attribute -> component
          attributes (empty list only for attributes of derived
          structures with no component) *)
  mapping : Mapping.t;
  warnings : string list;
}

val origin_of : t -> Ecr.Name.t -> origin option
(** Origin of an object class or relationship set of the integrated
    schema. *)

val is_equivalent : t -> Ecr.Name.t -> bool
val is_derived : t -> Ecr.Name.t -> bool

val components_of_attribute :
  t -> Ecr.Name.t -> Ecr.Name.t -> Ecr.Qname.Attr.t list
(** [components_of_attribute r cls attr] — the component attributes a
    (possibly inherited) integrated attribute merges; the data of the
    Component Attribute screen. *)

val component_structures : t -> Ecr.Name.t -> Ecr.Qname.t list
(** The component structures whose extent an integrated structure
    carries ([Equivalent]/[Original]), or which it generalises
    ([Derived], resolved transitively to component classes). *)

val summary : t -> string
(** One-paragraph statistics: #entities, #categories, #relationships,
    #merged, #derived, #warnings. *)

val pp : Format.formatter -> t -> unit
