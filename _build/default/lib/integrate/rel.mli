(** The algebra of basic domain relations underlying assertion
    composition and conflict detection.

    Between two {e non-empty} sets exactly one of five basic relations
    holds: equal, proper subset, proper superset, proper overlap, or
    disjoint.  A cell of the assertion matrix denotes a {e set} of still-
    possible basic relations (a disjunction), represented as a bitmask.
    The paper's "rules of transitive composition of assertions" are the
    composition table of this algebra, and an assertion conflicts with
    earlier ones exactly when intersecting its denotation with the
    propagated cell leaves the empty set.

    The algebra is sound for non-empty domains: if [r1] holds between
    A and B and [r2] between B and C, the basic relation between A and C
    is a member of [compose r1 r2] (property-tested against random
    finite sets in the test suite). *)

type basic = Eq | Lt | Gt | Ov | Dj

type t = private int
(** A set of basic relations (bitmask, 0..31). *)

val empty : t
(** The inconsistent cell: no relation is possible. *)

val all : t
(** The unconstrained cell. *)

val of_basic : basic -> t
val of_list : basic list -> t
val to_list : t -> basic list

val mem : basic -> t -> bool
val is_empty : t -> bool
val is_singleton : t -> basic option
val cardinal : t -> int

val inter : t -> t -> t
val union : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool

val converse : t -> t
(** Reads the relation right-to-left: swaps [Lt]/[Gt]. *)

val compose : t -> t -> t
(** [compose r1 r2] is the set of basic relations possible between A and
    C given [r1] between A and B and [r2] between B and C. *)

val compose_basic : basic -> basic -> t
(** One entry of the composition table. *)

val of_assertion : Assertion.t -> t
(** The denotation of a DDA assertion ([Equal] -> [{Eq}], ...; both
    disjoint codes denote [{Dj}]). *)

val to_assertion : integrable:bool -> t -> Assertion.t option
(** A singleton cell rendered back as an assertion; [integrable]
    selects which disjoint code a [{Dj}] cell becomes.  [None] when the
    cell is not a singleton. *)

val basic_of_extents : ('a -> 'a -> bool) -> 'a list -> 'a list -> basic
(** [basic_of_extents equal xs ys] computes the basic relation between
    two non-empty finite sets given element equality — the reference
    model used by the property tests. *)

val basic_to_string : basic -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
