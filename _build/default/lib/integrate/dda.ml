open Ecr

type resolution = Withdraw | Replace of Assertion.t

type t = {
  label : string;
  attr_equivalent :
    Qname.Attr.t * Attribute.t -> Qname.Attr.t * Attribute.t -> bool;
  object_assertion : Qname.t -> Qname.t -> Assertion.t option;
  relationship_assertion : Qname.t -> Qname.t -> Assertion.t option;
  resolve_conflict : Assertions.conflict -> resolution;
}

let silent =
  {
    label = "silent";
    attr_equivalent = (fun _ _ -> false);
    object_assertion = (fun _ _ -> None);
    relationship_assertion = (fun _ _ -> None);
    resolve_conflict = (fun _ -> Withdraw);
  }

let lookup_assertion facts a b =
  List.find_map
    (fun (l, assertion, r) ->
      if Qname.equal l a && Qname.equal r b then Some assertion
      else if Qname.equal l b && Qname.equal r a then
        Some (Assertion.converse assertion)
      else None)
    facts

let of_assertion_list ?(equivalences = []) ?(relationships = []) objects =
  {
    label = "scripted";
    attr_equivalent =
      (fun (qa, _) (qb, _) ->
        List.exists
          (fun (x, y) ->
            (Qname.Attr.equal x qa && Qname.Attr.equal y qb)
            || (Qname.Attr.equal x qb && Qname.Attr.equal y qa))
          equivalences);
    object_assertion = lookup_assertion objects;
    relationship_assertion = lookup_assertion relationships;
    resolve_conflict = (fun _ -> Withdraw);
  }

type counters = {
  mutable attr_questions : int;
  mutable object_questions : int;
  mutable relationship_questions : int;
  mutable conflicts_seen : int;
}

let fresh_counters () =
  {
    attr_questions = 0;
    object_questions = 0;
    relationship_questions = 0;
    conflicts_seen = 0;
  }

let counting counters oracle =
  {
    oracle with
    attr_equivalent =
      (fun a b ->
        counters.attr_questions <- counters.attr_questions + 1;
        oracle.attr_equivalent a b);
    object_assertion =
      (fun a b ->
        counters.object_questions <- counters.object_questions + 1;
        oracle.object_assertion a b);
    relationship_assertion =
      (fun a b ->
        counters.relationship_questions <- counters.relationship_questions + 1;
        oracle.relationship_assertion a b);
    resolve_conflict =
      (fun c ->
        counters.conflicts_seen <- counters.conflicts_seen + 1;
        oracle.resolve_conflict c);
  }
