open Ecr

type origin =
  | Original of Qname.t
  | Equivalent of Qname.t list
  | Derived of Name.t list

type t = {
  schema : Schema.t;
  object_origin : origin Name.Map.t;
  relationship_origin : origin Name.Map.t;
  attr_components : Qname.Attr.t list Name.Map.t Name.Map.t;
  mapping : Mapping.t;
  warnings : string list;
}

let origin_of t n =
  match Name.Map.find_opt n t.object_origin with
  | Some o -> Some o
  | None -> Name.Map.find_opt n t.relationship_origin

let is_equivalent t n =
  match origin_of t n with Some (Equivalent _) -> true | _ -> false

let is_derived t n =
  match origin_of t n with Some (Derived _) -> true | _ -> false

let components_of_attribute t cls attr =
  match Name.Map.find_opt cls t.attr_components with
  | None -> []
  | Some attrs -> Option.value ~default:[] (Name.Map.find_opt attr attrs)

let rec component_structures t n =
  match origin_of t n with
  | None -> []
  | Some (Original q) -> [ q ]
  | Some (Equivalent qs) -> qs
  | Some (Derived children) ->
      List.concat_map (component_structures t) children

let summary t =
  let entities = List.length (Schema.entities t.schema)
  and categories = List.length (Schema.categories t.schema)
  and relationships = List.length (Schema.relationships t.schema) in
  let count pred m = Name.Map.fold (fun _ o acc -> if pred o then acc + 1 else acc) m 0 in
  let merged =
    count (function Equivalent _ -> true | _ -> false) t.object_origin
    + count (function Equivalent _ -> true | _ -> false) t.relationship_origin
  and derived =
    count (function Derived _ -> true | _ -> false) t.object_origin
    + count (function Derived _ -> true | _ -> false) t.relationship_origin
  in
  Printf.sprintf
    "%d entities, %d categories, %d relationships (%d merged, %d derived, %d \
     warnings)"
    entities categories relationships merged derived
    (List.length t.warnings)

let pp fmt t =
  Format.fprintf fmt "%a@.%s@." Schema.pp t.schema (summary t);
  List.iter (fun w -> Format.fprintf fmt "warning: %s@." w) t.warnings
