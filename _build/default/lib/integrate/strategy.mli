(** Integration strategies for more than two schemas.

    The survey of Batini, Lenzerini & Navathe (1986) classifies
    methodologies by how they process multiple schemas; the paper's
    methodology is {e n-ary} ("one shot"), while most contemporaries
    were {e binary} — integrating two schemas at a time, either along a
    ladder (fold left) or as a balanced tournament.  This module
    implements all of them over the same {!Dda} oracle so the benchmark
    harness can compare total DDA effort and derivation reuse
    (experiment E13), plus the section-4 enhancement of ordering binary
    steps by schema resemblance (E15). *)

type outcome = {
  result : Result.t;
  stats : Protocol.stats;
  steps : int;  (** number of pairwise integration steps performed *)
}

val nary :
  ?options:Protocol.options ->
  ?naming:Naming.t ->
  Ecr.Schema.t list ->
  Dda.t ->
  outcome
(** The paper's strategy: collect assertions across every schema pair,
    integrate once. *)

val binary_ladder :
  ?options:Protocol.options ->
  ?naming:Naming.t ->
  ?register:(Result.t -> unit) ->
  Ecr.Schema.t list ->
  Dda.t ->
  outcome
(** Fold in list order: ((s1 + s2) + s3) + ...  [register] is called on
    every intermediate result so a ground-truth oracle can learn the
    extents of the intermediate classes. *)

val binary_balanced :
  ?options:Protocol.options ->
  ?naming:Naming.t ->
  ?register:(Result.t -> unit) ->
  Ecr.Schema.t list ->
  Dda.t ->
  outcome
(** Tournament: pair up schemas each round, halving until one remains. *)

val binary_guided :
  ?options:Protocol.options ->
  ?naming:Naming.t ->
  ?register:(Result.t -> unit) ->
  weights:Heuristics.Resemblance.weighted ->
  Ecr.Schema.t list ->
  Dda.t ->
  outcome
(** Binary, picking the most-resembling remaining pair each round
    (the paper's proposed schema-resemblance enhancement). *)
