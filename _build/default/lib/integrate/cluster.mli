(** Clusters: groups of related object classes.

    "A cluster is a group of related objects that are connected by any
    assertion except disjoint nonintegrable."  Clusters partition the
    integration work — each cluster is integrated independently and
    classes outside every cluster pass through unchanged. *)

type t = Ecr.Qname.t list list
(** Each cluster is a list of member classes; clusters are disjoint. *)

val of_edges :
  Ecr.Qname.t list -> (Ecr.Qname.t * Ecr.Qname.t) list -> t
(** Connected components of the given nodes under the given edges;
    singleton components (isolated nodes) are omitted. *)

val of_assertions : Assertions.t -> t
(** Components under {!Assertions.integration_edges}. *)

val find : Ecr.Qname.t -> t -> Ecr.Qname.t list option
(** The cluster containing the given class, if any. *)

val pp : Format.formatter -> t -> unit
