(** Mappings between component schemas and the integrated schema.

    "Following integration, mappings between each component schema and
    the integrated schema are generated."  A mapping entry records, for
    one component structure, the integrated structure that carries its
    extent and, per component attribute, the integrated class/attribute
    where its values now live (a merged attribute may have been placed
    on an ancestor of the extent-carrying class).

    The same data serves both of the paper's directions: view requests
    are rewritten component-to-integrated (logical database design), and
    global requests are unfolded integrated-to-component (global schema
    design); see the [query] library. *)

type attr_target = {
  in_class : Ecr.Name.t;  (** integrated structure holding the attribute *)
  as_attr : Ecr.Name.t;  (** its (possibly [D_]-prefixed) name there *)
}

type entry = {
  source : Ecr.Qname.t;
  target : Ecr.Name.t;  (** integrated structure carrying the extent *)
  attrs : attr_target Ecr.Name.Map.t;  (** component attribute -> location *)
}

type t

val empty : t

val add_object : entry -> t -> t
val add_relationship : entry -> t -> t

val object_entry : Ecr.Qname.t -> t -> entry option
val relationship_entry : Ecr.Qname.t -> t -> entry option

val object_target : Ecr.Qname.t -> t -> Ecr.Name.t option
(** The integrated class for a component object class. *)

val attr_target : Ecr.Qname.t -> Ecr.Name.t -> t -> attr_target option
(** Where one component attribute (of an object class) ended up. *)

val relationship_attr_target :
  Ecr.Qname.t -> Ecr.Name.t -> t -> attr_target option

val objects_into : Ecr.Name.t -> t -> entry list
(** All component object classes mapped into the given integrated class
    (the reverse direction, for global-to-component unfolding). *)

val relationships_into : Ecr.Name.t -> t -> entry list

val object_entries : t -> entry list
val relationship_entries : t -> entry list

val pp : Format.formatter -> t -> unit
