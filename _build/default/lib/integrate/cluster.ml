open Ecr

type t = Qname.t list list

let of_edges nodes edges =
  (* Union-find over an adjacency map. *)
  let parent = Hashtbl.create (List.length nodes * 2) in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None -> x
    | Some p ->
        if Qname.equal p x then x
        else begin
          let root = find p in
          Hashtbl.replace parent x root;
          root
        end
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (Qname.equal ra rb) then Hashtbl.replace parent ra rb
  in
  List.iter (fun n -> if not (Hashtbl.mem parent n) then Hashtbl.replace parent n n) nodes;
  List.iter (fun (a, b) -> union a b) edges;
  let groups = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let r = find n in
      let key = Qname.to_string r in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (n :: cur))
    nodes;
  Hashtbl.fold
    (fun _ members acc ->
      match members with
      | [] | [ _ ] -> acc
      | _ -> List.sort Qname.compare members :: acc)
    groups []
  |> List.sort (fun a b ->
         match (a, b) with
         | x :: _, y :: _ -> Qname.compare x y
         | _ -> 0)

let of_assertions m =
  let edges =
    List.map (fun (a, b, _) -> (a, b)) (Assertions.integration_edges m)
  in
  of_edges (Assertions.nodes m) edges

let find q t = List.find_opt (List.exists (Qname.equal q)) t

let pp fmt t =
  List.iteri
    (fun i cluster ->
      Format.fprintf fmt "@[<h>cluster %d: %s@]@." (i + 1)
        (String.concat ", " (List.map Qname.to_string cluster)))
    t
