(** The five assertions a DDA can state about a pair of object classes
    (or relationship sets) from different schemas, and their numeric
    codes as printed on the Assertion Collection screens.

    An assertion describes the relationship between the {e domains}
    (real-world instance sets) of the two classes:

    - code 1, {e equals} — identical domains; the classes merge into a
      single [E_] class (Figure 2a);
    - code 2, {e contained in} — the first domain is a proper subset of
      the second; the first class becomes a category of the second
      (Figure 2b, direction flipped);
    - code 3, {e contains} — converse of code 2;
    - code 4, {e disjoint integrable} — disjoint domains that the DDA
      still wants generalised under a new derived [D_] class
      (Figure 2d);
    - code 5, {e may be} — properly overlapping domains; both classes
      become categories of a new derived [D_] class (Figure 2c);
    - code 0, {e disjoint nonintegrable} — disjoint, kept separate
      (Figure 2e). *)

type t =
  | Equal
  | Contained_in  (** first ⊂ second *)
  | Contains  (** first ⊃ second *)
  | Disjoint_integrable
  | May_be  (** proper overlap *)
  | Disjoint_nonintegrable

val code : t -> int
(** The menu number (1, 2, 3, 4, 5, 0 respectively). *)

val of_code : int -> t option

val converse : t -> t
(** The same assertion read right-to-left: swaps [Contains] and
    [Contained_in], fixes the rest. *)

val is_disjoint : t -> bool
(** True for both disjoint codes. *)

val integrable : t -> bool
(** True for every assertion except [Disjoint_nonintegrable]: the pair
    will share a cluster and be connected in the integrated lattice. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
val describe : t -> string
(** The menu line, e.g. ["OB_CL_name_1 'contains' OB_CL_name_2"]. *)

val pp : Format.formatter -> t -> unit
