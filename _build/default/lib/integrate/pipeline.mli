(** The end-to-end integration pipeline.

    [integrate] is the pure function at the core of the tool:

    {v component schemas × attribute equivalences × assertions
       -> integrated schema × provenance × mappings v}

    It accepts {e n} schemas at once — the paper's methodology is n-ary
    even though the interactive screens collect assertions pairwise.
    The binary use (two schemas) is the common case; iterated binary
    integration is provided by {!Strategy}. *)

type input = {
  schemas : Ecr.Schema.t list;
  equivalence : Equivalence.t;
  object_assertions : Assertions.t;
  relationship_assertions : Assertions.t;
  naming : Naming.t;
  integrated_name : Ecr.Name.t;
}

val input :
  ?naming:Naming.t ->
  ?name:string ->
  Ecr.Schema.t list ->
  Equivalence.t ->
  Assertions.t ->
  Assertions.t ->
  input
(** [input schemas eq objs rels] packs pipeline input; [name] defaults
    to ["INTEGRATED"]. *)

val integrate : input -> Result.t
(** Performs Phase 4.  The assertion matrices must already be closed and
    consistent (they are, by construction of {!Assertions.add}). *)

val quick :
  ?naming:Naming.t ->
  ?name:string ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  equivalences:(Ecr.Qname.Attr.t * Ecr.Qname.Attr.t) list ->
  object_assertions:(Ecr.Qname.t * Assertion.t * Ecr.Qname.t) list ->
  ?relationship_assertions:(Ecr.Qname.t * Assertion.t * Ecr.Qname.t) list ->
  unit ->
  (Result.t, Assertions.conflict) result
(** Convenience wrapper for the common two-schema case: registers both
    schemas, declares the equivalences, enters the assertions in order
    (failing fast on the first conflict) and integrates. *)
