open Ecr

type merged = {
  rel : Relationship.t;
  members : Qname.t list;
  generalises : Name.t list;
  attr_components : (Name.t * Qname.Attr.t list) list;
}

type t = {
  rels : merged list;
  rel_of : Name.t Qname.Map.t;
  warnings : string list;
}

type slot = { node : Name.t; card : Cardinality.t; role : Name.t option }

let build ?(naming = Naming.default) ?(used_names = Name.Set.empty) ~schemas
    ~equivalence ~matrix ~lattice () =
  let warnings = ref [] in
  let warn fmt = Printf.ksprintf (fun s -> warnings := s :: !warnings) fmt in

  let universe =
    List.concat_map
      (fun s ->
        List.map
          (fun r -> (Schema.qname s r.Relationship.name, r))
          (Schema.relationships s))
      schemas
  in
  let index_of =
    List.fold_left
      (fun (i, m) (q, _) -> (i + 1, Qname.Map.add q i m))
      (0, Qname.Map.empty) universe
    |> snd
  in
  let order q = Option.value ~default:max_int (Qname.Map.find_opt q index_of) in
  let def_of q = List.assoc_opt q (List.map (fun (q, r) -> (q, r)) universe) in
  let def q =
    match def_of q with
    | Some r -> r
    | None -> invalid_arg ("Rel_merge: unknown relationship " ^ Qname.to_string q)
  in

  (* Participants as lattice slots. *)
  let slots_of q =
    let r = def q in
    List.map
      (fun p ->
        let pq = Qname.make q.Qname.schema p.Relationship.obj in
        match Lattice.node_of lattice pq with
        | Some node -> { node; card = p.Relationship.card; role = p.Relationship.role }
        | None ->
            (* participant object class missing from the lattice can only
               happen on malformed input; keep the raw name *)
            { node = p.Relationship.obj; card = p.Relationship.card; role = p.Relationship.role })
      r.Relationship.participants
  in

  (* Match the participants of [slots2] against merged [slots1]; returns
     the widened slot list or None when some participant has no related
     counterpart. *)
  let match_slots slots1 slots2 =
    if List.length slots1 <> List.length slots2 then None
    else begin
      let remaining = ref (List.mapi (fun i s -> (i, s)) slots2) in
      let matched =
        List.filter_map
          (fun s1 ->
            let candidate =
              List.find_opt
                (fun (_, s2) -> Lattice.related lattice s1.node s2.node <> None)
                !remaining
            in
            match candidate with
            | None -> None
            | Some ((i, s2) as hit) ->
                ignore hit;
                remaining := List.filter (fun (j, _) -> j <> i) !remaining;
                let node =
                  match Lattice.related lattice s1.node s2.node with
                  | Some general -> general
                  | None -> s1.node
                in
                Some
                  {
                    node;
                    card = Cardinality.union s1.card s2.card;
                    role = (match s1.role with Some _ -> s1.role | None -> s2.role);
                  })
          slots1
      in
      if List.length matched = List.length slots1 then Some matched else None
    end
  in

  (* --- equals-merge groups ---------------------------------------- *)
  let edges = Assertions.integration_edges matrix in
  let uf = Hashtbl.create 16 in
  let rec find q =
    match Hashtbl.find_opt uf (Qname.to_string q) with
    | None -> q
    | Some p -> if Qname.equal p q then q else find p
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (Qname.equal ra rb) then begin
      let keep, absorb = if order ra <= order rb then (ra, rb) else (rb, ra) in
      Hashtbl.replace uf (Qname.to_string absorb) keep
    end
  in
  List.iter
    (fun (a, b, assertion) ->
      if assertion = Assertion.Equal then union a b)
    edges;
  let groups_tbl = Hashtbl.create 16 in
  List.iter
    (fun (q, _) ->
      let r = find q in
      let key = Qname.to_string r in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups_tbl key) in
      Hashtbl.replace groups_tbl key (q :: cur))
    universe;
  let groups =
    Hashtbl.fold
      (fun _ members acc ->
        List.sort (fun a b -> Int.compare (order a) (order b)) members :: acc)
      groups_tbl []
    |> List.sort (fun a b ->
           match (a, b) with
           | x :: _, y :: _ -> Int.compare (order x) (order y)
           | _ -> 0)
  in

  (* split a group whose participants cannot be matched *)
  let groups =
    List.concat_map
      (fun group ->
        match group with
        | [] | [ _ ] -> [ group ]
        | first :: rest ->
            let ok, bad =
              List.fold_left
                (fun (slots, ok, bad) q ->
                  match match_slots slots (slots_of q) with
                  | Some widened -> (widened, q :: ok, bad)
                  | None -> (slots, ok, q :: bad))
                (slots_of first, [ first ], [])
                rest
              |> fun (_, ok, bad) -> (List.rev ok, List.rev bad)
            in
            List.iter
              (fun q ->
                warn
                  "relationship %s asserted equal but participants do not \
                   correspond; kept separate"
                  (Qname.to_string q))
              bad;
            ok :: List.map (fun q -> [ q ]) bad)
      groups
  in

  (* --- naming ------------------------------------------------------ *)
  let used = ref used_names in
  let claim n =
    let n' = Naming.uniquify !used n in
    used := Name.Set.add n' !used;
    n'
  in

  (* --- attribute merge for a member list --------------------------- *)
  let attr_def =
    let table = Hashtbl.create 32 in
    List.iter
      (fun (q, r) ->
        List.iteri
          (fun i a ->
            Hashtbl.replace table
              (Qname.Attr.to_string (Qname.Attr.make q a.Attribute.name))
              (a, i))
          r.Relationship.attributes)
      universe;
    table
  in
  let find_attr qa = Hashtbl.find_opt attr_def (Qname.Attr.to_string qa) in
  let merge_attrs members =
    let in_members qa = List.exists (Qname.equal qa.Qname.Attr.owner) members in
    let classes =
      Equivalence.classes equivalence
      |> List.map (List.filter in_members)
      |> List.filter (fun cls -> cls <> [])
    in
    let attr_key qa =
      match find_attr qa with
      | Some (_, pos) -> (order qa.Qname.Attr.owner, pos)
      | None -> (max_int, max_int)
    in
    let used_attrs = ref Name.Set.empty in
    List.filter_map
      (fun cls ->
        let cls = List.sort (fun a b -> compare (attr_key a) (attr_key b)) cls in
        let defs = List.filter_map (fun c -> Option.map fst (find_attr c)) cls in
        match (cls, defs) with
        | [], _ | _, [] -> None
        | first :: _, d0 :: drest ->
            let domain =
              List.fold_left
                (fun acc d ->
                  match Domain.join acc d.Attribute.domain with
                  | Some j -> j
                  | None ->
                      warn "incompatible domains merged for %s"
                        (Qname.Attr.to_string first);
                      acc)
                d0.Attribute.domain drest
            in
            let key = List.for_all (fun d -> d.Attribute.key) defs in
            let base =
              if List.length cls > 1 then
                Naming.merged_attribute_name first.Qname.Attr.attr
              else first.Qname.Attr.attr
            in
            let name = Naming.uniquify !used_attrs base in
            used_attrs := Name.Set.add name !used_attrs;
            Some (Attribute.make ~key name domain, cls))
      classes
    |> List.sort (fun (_, c1) (_, c2) ->
           compare (attr_key (List.hd c1)) (attr_key (List.hd c2)))
  in

  (* A participant slot's minimum cardinality only binds the extents the
     component schemas governed.  When the integrated node also carries
     members contributed by schemas that do not have this relationship,
     total participation cannot be guaranteed any more and the minimum
     relaxes to 0 (the maximum is unaffected). *)
  let carrier_schemas node =
    let descendant_of target n =
      Lattice.is_ancestor_or_self lattice ~ancestor:target n.Lattice.id
    in
    List.concat_map
      (fun n ->
        if descendant_of node n then
          List.map (fun m -> m.Qname.schema) n.Lattice.members
        else [])
      lattice.Lattice.nodes
    |> List.sort_uniq Name.compare
  in
  let relax_slots members slots =
    let rel_schemas =
      List.map (fun m -> m.Qname.schema) members |> List.sort_uniq Name.compare
    in
    List.map
      (fun s ->
        let foreign =
          List.exists
            (fun carrier -> not (List.exists (Name.equal carrier) rel_schemas))
            (carrier_schemas s.node)
        in
        if foreign && Cardinality.total s.card then
          { s with card = Cardinality.make 0 s.card.Cardinality.max }
        else s)
      slots
  in

  (* --- build merged groups ----------------------------------------- *)
  let merged_groups =
    List.filter_map
      (fun group ->
        match group with
        | [] -> None
        | first :: rest ->
            let slots =
              List.fold_left
                (fun slots q ->
                  match match_slots slots (slots_of q) with
                  | Some widened -> widened
                  | None -> slots (* cannot happen: groups were split *))
                (slots_of first) rest
              |> relax_slots group
            in
            let id =
              match group with
              | [ only ] ->
                  if Name.Set.mem only.Qname.obj !used then
                    claim (Naming.qualified only)
                  else claim only.Qname.obj
              | _ -> claim (Naming.equivalent_name naming group)
            in
            let attrs = merge_attrs group in
            let participants =
              List.map
                (fun s -> Relationship.participant ?role:s.role s.node s.card)
                slots
            in
            Some
              {
                rel =
                  Relationship.make
                    ~attrs:(List.map fst attrs)
                    id participants;
                members = group;
                generalises = [];
                attr_components =
                  List.map (fun (a, cls) -> (a.Attribute.name, cls)) attrs;
              })
      groups
  in
  let rel_of =
    List.fold_left
      (fun acc m ->
        List.fold_left
          (fun acc q -> Qname.Map.add q m.rel.Relationship.name acc)
          acc m.members)
      Qname.Map.empty merged_groups
  in
  let group_of q =
    List.find_opt (fun m -> List.exists (Qname.equal q) m.members) merged_groups
  in

  (* --- derived generalisations ------------------------------------- *)
  let gen_edges =
    List.filter_map
      (fun (a, b, assertion) ->
        match assertion with
        | Assertion.Contained_in | Assertion.Contains | Assertion.May_be
        | Assertion.Disjoint_integrable ->
            Some (a, b)
        | Assertion.Equal | Assertion.Disjoint_nonintegrable -> None)
      edges
  in
  let seen_gen = Hashtbl.create 8 in
  let derived =
    List.filter_map
      (fun (a, b) ->
        match (group_of a, group_of b) with
        | Some ga, Some gb
          when not (Name.equal ga.rel.Relationship.name gb.rel.Relationship.name)
          -> (
            let key =
              let na = Name.to_string ga.rel.Relationship.name
              and nb = Name.to_string gb.rel.Relationship.name in
              if na <= nb then na ^ "/" ^ nb else nb ^ "/" ^ na
            in
            if Hashtbl.mem seen_gen key then None
            else begin
              Hashtbl.add seen_gen key ();
              match
                match_slots
                  (List.map
                     (fun p ->
                       {
                         node = p.Relationship.obj;
                         card = p.Relationship.card;
                         role = p.Relationship.role;
                       })
                     ga.rel.Relationship.participants)
                  (List.map
                     (fun p ->
                       {
                         node = p.Relationship.obj;
                         card = p.Relationship.card;
                         role = p.Relationship.role;
                       })
                     gb.rel.Relationship.participants)
              with
              | None ->
                  warn
                    "relationship sets %s and %s related but participants do \
                     not correspond; no derived set generated"
                    (Qname.to_string a) (Qname.to_string b);
                  None
              | Some slots ->
                  let id = claim (Naming.derived_name naming a b) in
                  let attrs = merge_attrs (ga.members @ gb.members) in
                  let participants =
                    List.map
                      (fun s ->
                        Relationship.participant ?role:s.role s.node s.card)
                      slots
                  in
                  Some
                    {
                      rel =
                        Relationship.make
                          ~attrs:(List.map fst attrs)
                          id participants;
                      members = [];
                      generalises =
                        [ ga.rel.Relationship.name; gb.rel.Relationship.name ];
                      attr_components =
                        List.map
                          (fun (at, cls) -> (at.Attribute.name, cls))
                          attrs;
                    }
            end)
        | _ -> None)
      gen_edges
  in
  {
    rels = merged_groups @ derived;
    rel_of;
    warnings = List.rev !warnings;
  }
