(** Attribute equivalence classes — the Attribute Class Similarity (ACS)
    bookkeeping of the Equivalence Class Specification phase.

    The DDA declares pairs of attributes (of object classes or of
    relationship sets, from different schemas) to be equivalent; the
    tool maintains the induced partition.  "The tool then changes the
    value of Eq_Class # of one to that of the other" — i.e. declaring
    equivalence unions the two classes; we implement exactly that with a
    persistent union-find keyed by qualified attribute names.

    Class numbers are stable: each attribute is assigned a number when
    first registered, and a class is displayed under the smallest number
    among its members, matching the screens' behaviour. *)

type t

val empty : t

val register : Ecr.Qname.Attr.t -> t -> t
(** Makes the attribute known (a singleton class).  Registering twice is
    a no-op. *)

val register_schema : Ecr.Schema.t -> t -> t
(** Registers every attribute of every structure of the schema. *)

val declare : Ecr.Qname.Attr.t -> Ecr.Qname.Attr.t -> t -> t
(** Unions the classes of the two attributes (registering them first if
    needed). *)

val separate : Ecr.Qname.Attr.t -> t -> t
(** The Screen 7 "(D)elete from equiv. class" operation: removes the
    attribute from its class, making it a fresh singleton again. *)

val equivalent : Ecr.Qname.Attr.t -> Ecr.Qname.Attr.t -> t -> bool

val class_number : Ecr.Qname.Attr.t -> t -> int
(** The Eq_class # displayed for this attribute.
    @raise Not_found when unregistered. *)

val class_of : Ecr.Qname.Attr.t -> t -> Ecr.Qname.Attr.t list
(** All members of the attribute's class (itself included), sorted. *)

val classes : t -> Ecr.Qname.Attr.t list list
(** Every class with at least one member, sorted by class number. *)

val nontrivial_classes : t -> Ecr.Qname.Attr.t list list
(** Classes with at least two members. *)

val members : t -> Ecr.Qname.Attr.t list
(** Every registered attribute. *)

val shared_count : Ecr.Qname.t -> Ecr.Qname.t -> t -> int
(** The Object Class Similarity (OCS) matrix entry: the number of
    equivalence classes containing at least one attribute of each of the
    two given structures. *)

val restrict : (Ecr.Qname.Attr.t -> bool) -> t -> t
(** Keeps only attributes satisfying the predicate (used when a schema
    is removed from the workspace). *)
