(** Synthesis of the names of integrated structures.

    The paper's conventions: a structure resulting from an "equals"
    merge carries an [E_] prefix ([E_Department]); a structure derived
    as a new generalisation carries a [D_] prefix built from
    abbreviations of the component names ([D_Stud_Facu],
    [D_Grad_Inst], [D_Secr_Engi]); a merged (derived) attribute gets a
    [D_] prefix ([D_Name]).

    The exact abbreviation scheme for merged structures with unequal
    names is not fully specified by the paper (its example prints
    [E_Stud_Majo] for the merged Majors relationship), so names can be
    pinned per component pair with {!with_override} — the paper
    reproduction pins that one name. *)

type t

val default : t
(** Four-character abbreviations, ["E_"] and ["D_"] prefixes, no
    overrides. *)

val with_override : Ecr.Qname.t -> Ecr.Qname.t -> string -> t -> t
(** Forces the integrated name of the structure produced from the given
    component pair (in either orientation). *)

val equivalent_name : t -> Ecr.Qname.t list -> Ecr.Name.t
(** Name for an equals-merged group: [E_<name>] when all members share
    one name, otherwise [E_<abbr>_<abbr>...] over the member names (an
    override on any pair of members wins). *)

val derived_name : t -> Ecr.Qname.t -> Ecr.Qname.t -> Ecr.Name.t
(** Name for a derived generalisation of a pair: [D_<abbr>_<abbr>]
    unless overridden. *)

val merged_attribute_name : Ecr.Name.t -> Ecr.Name.t
(** [D_<name>]. *)

val uniquify : Ecr.Name.Set.t -> Ecr.Name.t -> Ecr.Name.t
(** Appends [_2], [_3], ... until the name avoids the used set. *)

val qualified : Ecr.Qname.t -> Ecr.Name.t
(** [<schema>_<obj>] — the fallback for pass-through name collisions. *)

val overrides : t -> (Ecr.Qname.t * Ecr.Qname.t * Ecr.Name.t) list
(** The pinned names, for persistence. *)
