type basic = Eq | Lt | Gt | Ov | Dj

type t = int

let bit = function Eq -> 1 | Lt -> 2 | Gt -> 4 | Ov -> 8 | Dj -> 16

let basics = [ Eq; Lt; Gt; Ov; Dj ]

let empty = 0
let all = 31
let of_basic b = bit b
let of_list bs = List.fold_left (fun acc b -> acc lor bit b) 0 bs
let mem b r = r land bit b <> 0
let to_list r = List.filter (fun b -> mem b r) basics
let is_empty r = r = 0

let is_singleton r =
  match to_list r with [ b ] -> Some b | _ -> None

let cardinal r = List.length (to_list r)
let inter a b = a land b
let union a b = a lor b
let subset a b = a land b = a
let equal a b = a = b

let converse_basic = function
  | Lt -> Gt
  | Gt -> Lt
  | (Eq | Ov | Dj) as b -> b

let converse r = of_list (List.map converse_basic (to_list r))

(* The composition table, derived set-theoretically for non-empty sets
   (soundness is property-tested against random finite extents). *)
let compose_basic a b =
  match (a, b) with
  | Eq, x -> of_basic x
  | x, Eq -> of_basic x
  | Lt, Lt -> of_basic Lt
  | Lt, Gt -> all
  | Lt, Ov -> of_list [ Lt; Ov; Dj ]
  | Lt, Dj -> of_basic Dj
  | Gt, Lt -> of_list [ Eq; Lt; Gt; Ov ]
  | Gt, Gt -> of_basic Gt
  | Gt, Ov -> of_list [ Gt; Ov ]
  | Gt, Dj -> of_list [ Gt; Ov; Dj ]
  | Ov, Lt -> of_list [ Lt; Ov ]
  | Ov, Gt -> of_list [ Gt; Ov; Dj ]
  | Ov, Ov -> all
  | Ov, Dj -> of_list [ Gt; Ov; Dj ]
  | Dj, Lt -> of_list [ Lt; Ov; Dj ]
  | Dj, Gt -> of_basic Dj
  | Dj, Ov -> of_list [ Lt; Ov; Dj ]
  | Dj, Dj -> all

let compose r1 r2 =
  List.fold_left
    (fun acc b1 ->
      List.fold_left
        (fun acc b2 -> union acc (compose_basic b1 b2))
        acc (to_list r2))
    empty (to_list r1)

let of_assertion = function
  | Assertion.Equal -> of_basic Eq
  | Assertion.Contained_in -> of_basic Lt
  | Assertion.Contains -> of_basic Gt
  | Assertion.May_be -> of_basic Ov
  | Assertion.Disjoint_integrable | Assertion.Disjoint_nonintegrable ->
      of_basic Dj

let to_assertion ~integrable r =
  match is_singleton r with
  | Some Eq -> Some Assertion.Equal
  | Some Lt -> Some Assertion.Contained_in
  | Some Gt -> Some Assertion.Contains
  | Some Ov -> Some Assertion.May_be
  | Some Dj ->
      Some
        (if integrable then Assertion.Disjoint_integrable
         else Assertion.Disjoint_nonintegrable)
  | None -> None

let basic_of_extents eq xs ys =
  let mem x l = List.exists (eq x) l in
  let xs_in_ys = List.for_all (fun x -> mem x ys) xs
  and ys_in_xs = List.for_all (fun y -> mem y xs) ys
  and intersect = List.exists (fun x -> mem x ys) xs in
  if xs_in_ys && ys_in_xs then Eq
  else if xs_in_ys then Lt
  else if ys_in_xs then Gt
  else if intersect then Ov
  else Dj

let basic_to_string = function
  | Eq -> "="
  | Lt -> "<"
  | Gt -> ">"
  | Ov -> "o"
  | Dj -> "#"

let to_string r =
  "{" ^ String.concat "," (List.map basic_to_string (to_list r)) ^ "}"

let pp fmt r = Format.pp_print_string fmt (to_string r)
