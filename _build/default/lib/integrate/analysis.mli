(** Schema analysis: the incompatibility checks of Phase 2.

    "Other incompatibilities that may need to be considered during
    schema analysis are differences in naming conventions, scales/units,
    domain constraints, and other factors."  The tool cannot resolve
    these automatically (the paper's tool sends the DDA back to Phase 1)
    but it can {e find} them.  [analyse] inspects a workspace and
    reports:

    - {e homonyms}: attributes with the same (case-insensitive) name in
      different schemas that the DDA has {e not} declared equivalent —
      candidates for either an equivalence or a rename;
    - {e synonym suspects}: attributes the DDA declared equivalent whose
      names share no similarity at all — worth double-checking;
    - {e domain conflicts}: declared-equivalent attributes with
      incompatible domains (the scales/units problem);
    - {e key conflicts}: declared-equivalent attributes whose uniqueness
      properties disagree;
    - {e cardinality conflicts}: relationship sets asserted equal whose
      corresponding structural constraints have an empty intersection;
    - {e construct mismatches}: a concept modelled as an entity in one
      schema and as a relationship in another (the paper's marriage
      example), surfaced by the section-4 heuristics. *)

type issue =
  | Homonym of Ecr.Qname.Attr.t * Ecr.Qname.Attr.t
  | Synonym_suspect of Ecr.Qname.Attr.t * Ecr.Qname.Attr.t
  | Domain_conflict of Ecr.Qname.Attr.t * Ecr.Domain.t * Ecr.Qname.Attr.t * Ecr.Domain.t
  | Key_conflict of Ecr.Qname.Attr.t * Ecr.Qname.Attr.t
  | Cardinality_conflict of
      Ecr.Qname.t * Ecr.Qname.t * Ecr.Cardinality.t * Ecr.Cardinality.t
  | Construct_mismatch of Ecr.Qname.t * Ecr.Qname.t * float
      (** entity-side, relationship-side, resemblance score *)

val analyse :
  ?weights:Heuristics.Resemblance.weighted -> Workspace.t -> issue list
(** All issues, homonyms first.  [weights] drives the construct-mismatch
    detector (default: the standard weighted signals). *)

val to_string : issue -> string
val pp : Format.formatter -> issue -> unit
