lib/integrate/workspace.mli: Assertion Assertions Ecr Equivalence Naming Result Similarity
