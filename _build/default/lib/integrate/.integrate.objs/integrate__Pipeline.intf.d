lib/integrate/pipeline.mli: Assertion Assertions Ecr Equivalence Naming Result
