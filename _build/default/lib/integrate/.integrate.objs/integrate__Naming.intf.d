lib/integrate/naming.mli: Ecr
