lib/integrate/result.ml: Ecr Format List Mapping Name Option Printf Qname Schema
