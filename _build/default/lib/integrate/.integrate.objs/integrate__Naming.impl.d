lib/integrate/naming.ml: Ecr List Name Qname String
