lib/integrate/assertions.mli: Assertion Ecr Rel
