lib/integrate/mapping.ml: Ecr Format List Name Option Qname
