lib/integrate/protocol.ml: Assertions Attribute Dda Ecr Equivalence Heuristics List Object_class Pipeline Qname Relationship Schema Similarity
