lib/integrate/rel_merge.ml: Assertion Assertions Attribute Cardinality Domain Ecr Equivalence Hashtbl Int Lattice List Name Naming Option Printf Qname Relationship Schema
