lib/integrate/assertions.ml: Assertion Ecr List Object_class Option Qname Queue Rel Relationship Schema
