lib/integrate/similarity.ml: Ecr Equivalence Float Int List Object_class Qname Relationship Schema
