lib/integrate/dda.ml: Assertion Assertions Attribute Ecr List Qname
