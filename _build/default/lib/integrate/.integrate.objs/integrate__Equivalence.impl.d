lib/integrate/equivalence.ml: Attribute Ecr Int List Object_class Option Qname Relationship Schema
