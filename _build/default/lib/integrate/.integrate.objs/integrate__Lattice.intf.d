lib/integrate/lattice.mli: Assertions Ecr Equivalence Naming
