lib/integrate/lattice.ml: Assertion Assertions Attribute Domain Ecr Equivalence Hashtbl Int List Name Naming Object_class Option Printf Qname Schema
