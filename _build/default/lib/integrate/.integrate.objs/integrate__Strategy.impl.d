lib/integrate/strategy.ml: Ecr Heuristics List Name Option Printf Protocol Result Schema
