lib/integrate/protocol.mli: Assertions Dda Ecr Equivalence Heuristics Naming Result
