lib/integrate/strategy.mli: Dda Ecr Heuristics Naming Protocol Result
