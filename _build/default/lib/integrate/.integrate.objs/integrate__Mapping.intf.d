lib/integrate/mapping.mli: Ecr Format
