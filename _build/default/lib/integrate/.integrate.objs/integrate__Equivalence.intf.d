lib/integrate/equivalence.mli: Ecr
