lib/integrate/pipeline.ml: Assertions Attribute Ecr Equivalence Hashtbl Lattice List Mapping Name Naming Object_class Option Qname Rel_merge Relationship Result Schema
