lib/integrate/analysis.mli: Ecr Format Heuristics Workspace
