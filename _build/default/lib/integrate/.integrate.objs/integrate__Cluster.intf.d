lib/integrate/cluster.mli: Assertions Ecr Format
