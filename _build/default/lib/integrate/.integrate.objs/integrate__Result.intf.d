lib/integrate/result.mli: Ecr Format Mapping
