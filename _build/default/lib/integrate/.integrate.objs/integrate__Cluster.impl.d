lib/integrate/cluster.ml: Assertions Ecr Format Hashtbl List Option Qname String
