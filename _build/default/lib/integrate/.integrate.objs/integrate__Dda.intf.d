lib/integrate/dda.mli: Assertion Assertions Ecr
