lib/integrate/analysis.ml: Assertion Attribute Cardinality Domain Ecr Equivalence Format Heuristics List Name Object_class Option Printf Qname Relationship Schema Workspace
