lib/integrate/similarity.mli: Ecr Equivalence
