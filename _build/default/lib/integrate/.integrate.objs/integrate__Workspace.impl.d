lib/integrate/workspace.ml: Assertion Assertions Ecr Equivalence List Name Naming Pipeline Qname Schema Similarity
