lib/integrate/rel.mli: Assertion Format
