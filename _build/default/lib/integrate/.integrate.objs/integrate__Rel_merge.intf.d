lib/integrate/rel_merge.mli: Assertions Ecr Equivalence Lattice Naming
