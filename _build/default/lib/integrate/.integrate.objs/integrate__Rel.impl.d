lib/integrate/rel.ml: Assertion Format List String
