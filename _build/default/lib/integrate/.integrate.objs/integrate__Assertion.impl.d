lib/integrate/assertion.ml: Format Int
