lib/integrate/assertion.mli: Format
