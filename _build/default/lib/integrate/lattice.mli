(** Object-class integration: building the integrated IS-A lattice.

    Given the component schemas, the attribute equivalence partition and
    the (closed, consistent) assertion matrix, this module performs the
    object-class half of Phase 4:

    - classes connected by {e equals} merge into one node ([E_] names);
    - {e contained in} becomes an IS-A edge (the contained class's node
      becomes a category of the containing class's node);
    - {e may be} and {e disjoint integrable} pairs generate a new
      derived node ([D_] names) with both classes' nodes as categories;
    - IS-A edges are transitively reduced;
    - every attribute-equivalence class is placed once, at the lowest
      node that dominates all of its owners (a merged attribute gets a
      [D_] name and records its component attributes); attributes are
      never duplicated down the lattice — lower nodes inherit.

    Classes not appearing in any cluster pass through as singleton
    nodes.  Name collisions among unrelated pass-through classes are
    resolved by schema-qualification. *)

type placed_attr = {
  attr : Ecr.Attribute.t;  (** the integrated attribute *)
  components : Ecr.Qname.Attr.t list;
      (** the component attributes it merges; a singleton for a
          pass-through attribute *)
}

type node = {
  id : Ecr.Name.t;  (** integrated class name, unique in the lattice *)
  members : Ecr.Qname.t list;
      (** component classes whose extent this node carries; empty for
          derived ([D_]) generalisations *)
  derived_children : Ecr.Name.t list;
      (** for a derived node, the two nodes it generalises *)
  parents : Ecr.Name.t list;  (** IS-A, after transitive reduction *)
  attributes : placed_attr list;  (** attributes placed at this node *)
}

type t = {
  nodes : node list;  (** deterministic order: see {!build} *)
  node_of_class : Ecr.Name.t Ecr.Qname.Map.t;
      (** component object class -> carrying node *)
  warnings : string list;
}

val build :
  ?naming:Naming.t ->
  schemas:Ecr.Schema.t list ->
  equivalence:Equivalence.t ->
  matrix:Assertions.t ->
  unit ->
  t
(** Node order: merged/pass-through nodes in (schema, declaration)
    order of their first member, then derived nodes in creation order. *)

val node : t -> Ecr.Name.t -> node option
val node_of : t -> Ecr.Qname.t -> Ecr.Name.t option

val ancestors : t -> Ecr.Name.t -> Ecr.Name.t list
(** Transitive parents, nearest first. *)

val is_ancestor_or_self : t -> ancestor:Ecr.Name.t -> Ecr.Name.t -> bool

val related : t -> Ecr.Name.t -> Ecr.Name.t -> Ecr.Name.t option
(** When one node dominates the other (or they are equal), the more
    general of the two; [None] otherwise.  Used to match relationship
    participants. *)

val entity_nodes : t -> node list
(** Nodes without parents. *)

val category_nodes : t -> node list

val all_attributes : t -> Ecr.Name.t -> placed_attr list
(** Placed plus inherited attributes of a node (nearest placement
    first). *)
