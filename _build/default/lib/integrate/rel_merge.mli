(** Relationship-set integration.

    After object classes are integrated, relationship sets are: every
    component relationship's participants are redirected to the
    integrated lattice nodes; relationship sets asserted {e equal} merge
    into a single [E_] set whose participants are matched pairwise
    through the lattice (a participant pair matches when one integrated
    node dominates the other; the merged slot keeps the more general
    node and the union of the structural constraints); {e contained in},
    {e may be} and {e disjoint integrable} assertions additionally
    generate a derived [D_] relationship set generalising the pair
    (ECR has no relationship IS-A, so both originals are kept).

    Merged attributes follow the attribute-equivalence partition, as for
    object classes, but are placed on the merged relationship itself
    (relationship sets do not inherit). *)

type merged = {
  rel : Ecr.Relationship.t;  (** the integrated relationship set *)
  members : Ecr.Qname.t list;
      (** component relationship sets merged here; empty for derived *)
  generalises : Ecr.Name.t list;
      (** for a derived set, the integrated names of the two sets it
          generalises *)
  attr_components : (Ecr.Name.t * Ecr.Qname.Attr.t list) list;
      (** integrated attribute name -> component attributes *)
}

type t = {
  rels : merged list;  (** merged/pass-through sets first, derived last *)
  rel_of : Ecr.Name.t Ecr.Qname.Map.t;
      (** component relationship set -> integrated set *)
  warnings : string list;
}

val build :
  ?naming:Naming.t ->
  ?used_names:Ecr.Name.Set.t ->
  schemas:Ecr.Schema.t list ->
  equivalence:Equivalence.t ->
  matrix:Assertions.t ->
  lattice:Lattice.t ->
  unit ->
  t
(** [used_names] (typically the lattice's node names) are avoided when
    naming integrated relationship sets — the ECR namespace is shared
    by all structures of a schema. *)
