(** A minimal hierarchical (IMS-style) schema model and its translation
    into ECR, after Navathe–Awong 1987.

    A hierarchical database is a forest of record types; each record type
    has fields and at most one parent.  Translation:

    - every record type becomes an entity set whose fields become
      attributes (the sequence/key field becomes the ECR key);
    - every parent–child arc becomes a binary relationship set with
      structural constraints (1,1) on the child (a segment occurrence
      exists under exactly one parent occurrence) and (0,N) on the
      parent;
    - {e virtual} parent–child arcs (logical relationships, the IMS
      device for M:N) also become relationship sets, with (0,1) on the
      child. *)

type record_type = {
  rec_name : string;
  fields : (string * string * bool) list;  (** name, type, is sequence/key field *)
  parent : string option;
  virtual_parent : string option;
}

type t = { hdb_name : string; records : record_type list }

val record :
  ?parent:string ->
  ?virtual_parent:string ->
  string ->
  (string * string * bool) list ->
  record_type

exception Unsupported of string

val to_ecr : t -> Ecr.Schema.t
(** @raise Unsupported when a parent reference names a missing record. *)
