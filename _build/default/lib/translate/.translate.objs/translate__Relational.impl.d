lib/translate/relational.ml: Attribute Cardinality Domain Ecr List Name Object_class Printf Relationship Schema
