lib/translate/hierarchical.mli: Ecr
