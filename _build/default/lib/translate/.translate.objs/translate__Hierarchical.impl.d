lib/translate/hierarchical.ml: Attribute Cardinality Domain Ecr List Name Object_class Relationship Schema
