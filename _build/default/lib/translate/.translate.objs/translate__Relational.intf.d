lib/translate/relational.mli: Ecr
