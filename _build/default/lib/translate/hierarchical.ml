open Ecr

type record_type = {
  rec_name : string;
  fields : (string * string * bool) list;
  parent : string option;
  virtual_parent : string option;
}

type t = { hdb_name : string; records : record_type list }

let record ?parent ?virtual_parent name fields =
  { rec_name = name; fields; parent; virtual_parent }

exception Unsupported of string

let check_exists db name =
  if not (List.exists (fun r -> r.rec_name = name) db.records) then
    raise (Unsupported ("missing record type " ^ name))

let to_ecr db =
  let objects =
    List.map
      (fun r ->
        let attrs =
          List.map
            (fun (n, ty, key) ->
              Attribute.make ~key (Name.v n) (Domain.of_string ty))
            r.fields
        in
        Object_class.entity ~attrs (Name.v r.rec_name))
      db.records
  in
  let arcs =
    List.concat_map
      (fun r ->
        let physical =
          match r.parent with
          | None -> []
          | Some p ->
              check_exists db p;
              [
                Relationship.binary
                  (Name.v (p ^ "_" ^ r.rec_name))
                  (Name.v r.rec_name, Cardinality.exactly_one)
                  (Name.v p, Cardinality.any);
              ]
        in
        let virtual_ =
          match r.virtual_parent with
          | None -> []
          | Some p ->
              check_exists db p;
              [
                Relationship.binary
                  (Name.v (p ^ "_" ^ r.rec_name ^ "_v"))
                  (Name.v r.rec_name, Cardinality.at_most_one)
                  (Name.v p, Cardinality.any);
              ]
        in
        physical @ virtual_)
      db.records
  in
  Schema.make (Name.v db.hdb_name) ~objects ~relationships:arcs
