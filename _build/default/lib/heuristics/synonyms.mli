(** Synonym/antonym dictionary — the paper's section 4 proposes "a
    dictionary of synonyms and antonyms ... useful in detecting candidate
    pairs of equivalent attributes".

    A dictionary groups words into synonym rings and records antonym
    pairs; lookups are performed on normalised tokens, so
    ["Dept_Name"]/["DepartmentTitle"] match via the [dept]/[department]
    and [name]/[title] entries. *)

type t

val empty : t

val add_synonyms : string list -> t -> t
(** [add_synonyms words dict] places all [words] in one synonym ring
    (merging rings that share a word). *)

val add_antonyms : string -> string -> t -> t

val of_groups : ?antonyms:(string * string) list -> string list list -> t

val synonyms : string -> t -> string list
(** All words in the ring of the given word, itself excluded. *)

val are_synonyms : string -> string -> t -> bool
(** True when the two (normalised) words share a ring or are equal. *)

val are_antonyms : string -> string -> t -> bool

val token_similarity : t -> string -> string -> float
(** Fraction of tokens of the shorter identifier that have a synonym (or
    equal token) among the other identifier's tokens; antonymous tokens
    contribute -1, clamped to [0, 1]. *)

val default : t
(** A dictionary seeded with common database-design vocabulary
    (name/title, dept/department, salary/pay/wage, ...), sufficient for
    the university and company domains used by the examples and
    benchmarks. *)

val size : t -> int
(** Number of words known to the dictionary. *)
