(** Cross-construct correspondence detection.

    Section 4 ("semantic processing enhancements"): a concept modelled as
    an entity set in one schema may appear as a relationship set in
    another — the paper's example is a [Marriage] entity set vs a
    [Marriage] relationship between [Male] and [Female].  Following
    [Larson et al 87], two constructs of different types are flagged as
    candidates for correspondence when they share several common
    attributes. *)

type candidate = {
  entity_side : Ecr.Qname.t;  (** the object class *)
  relationship_side : Ecr.Qname.t;  (** the relationship set *)
  shared_attributes : (Ecr.Name.t * Ecr.Name.t * float) list;
  score : float;  (** fraction of the smaller attribute list matched *)
}

val detect :
  ?threshold:float ->
  Resemblance.weighted ->
  Ecr.Schema.t ->
  Ecr.Schema.t ->
  candidate list
(** [detect weighted s1 s2] pairs every object class of one schema with
    every relationship set of the other (both directions) and keeps the
    pairs whose attribute lists greedily match with mean signal score at
    or above [threshold] (default 0.6) on at least two attributes,
    sorted by decreasing score. *)
