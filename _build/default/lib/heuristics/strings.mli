(** String-matching primitives for the "syntactic processing
    enhancements" of the paper's section 4: heuristics that surface
    candidate pairs of equivalent attributes from their names. *)

val normalize : string -> string
(** Lower-cases and strips non-alphanumeric characters, so that
    ["Grad_Student"], ["GRADSTUDENT"] and ["grad-student"] normalise
    identically. *)

val tokens : string -> string list
(** Splits an identifier on underscores, hyphens and case boundaries:
    ["Grad_studentGPA"] becomes [["grad"; "student"; "gpa"]]. *)

val levenshtein : string -> string -> int
(** Edit distance (insert/delete/substitute, unit costs). *)

val levenshtein_similarity : string -> string -> float
(** [1 - distance / max length], in [0, 1]; 1.0 on equal strings and on
    two empty strings. *)

val dice_bigrams : string -> string -> float
(** Sørensen–Dice coefficient on character bigrams, in [0, 1]. *)

val jaro : string -> string -> float
(** Jaro similarity, in [0, 1]. *)

val jaro_winkler : ?prefix_scale:float -> string -> string -> float
(** Jaro–Winkler: Jaro boosted by common prefix length (up to 4), with
    [prefix_scale] defaulting to 0.1. *)

val token_overlap : string -> string -> float
(** Jaccard coefficient of the {!tokens} sets after {!normalize}. *)

val abbreviation_of : string -> string -> bool
(** [abbreviation_of a b] is [true] when the shorter string is a prefix
    or a subsequence-of-initials of the longer (e.g. ["dept"]/
    ["department"], ["gpa"]/["grade_point_average"]). *)

val name_similarity : string -> string -> float
(** The combined per-name score used by default: the maximum of
    {!levenshtein_similarity}, {!dice_bigrams}, {!jaro_winkler} and
    {!token_overlap}, forced to 1.0 by {!abbreviation_of}. *)
