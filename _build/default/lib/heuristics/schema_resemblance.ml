open Ecr

let score weighted s1 s2 =
  let objs1 = Schema.objects s1 and objs2 = Schema.objects s2 in
  let small, large =
    if List.length objs1 <= List.length objs2 then (objs1, objs2)
    else (objs2, objs1)
  in
  match small with
  | [] -> 0.0
  | _ ->
      let best oc =
        List.fold_left
          (fun acc other -> Float.max acc (Resemblance.object_score weighted oc other))
          0.0 large
      in
      List.fold_left (fun acc oc -> acc +. best oc) 0.0 small
      /. float_of_int (List.length small)

let rank_pairs weighted schemas =
  let rec pairs = function
    | [] -> []
    | s :: rest -> List.map (fun s' -> (s, s')) rest @ pairs rest
  in
  pairs schemas
  |> List.map (fun (a, b) -> (Schema.name a, Schema.name b, score weighted a b))
  |> List.sort (fun (_, _, x) (_, _, y) -> Float.compare y x)

let most_similar_pair weighted schemas =
  let rec pairs = function
    | [] -> []
    | s :: rest -> List.map (fun s' -> (s, s')) rest @ pairs rest
  in
  match pairs schemas with
  | [] -> None
  | all ->
      let best =
        List.fold_left
          (fun (bp, bs) (a, b) ->
            let sc = score weighted a b in
            if sc > bs then (Some (a, b), sc) else (bp, bs))
          (None, -1.0) all
      in
      fst best
