open Ecr

type attr_signal = {
  signal_name : string;
  score : Attribute.t -> Attribute.t -> float;
}

let name_signal =
  {
    signal_name = "name";
    score =
      (fun a b ->
        Strings.name_similarity
          (Name.to_string a.Attribute.name)
          (Name.to_string b.Attribute.name));
  }

let synonym_signal dict =
  {
    signal_name = "synonym";
    score =
      (fun a b ->
        Synonyms.token_similarity dict
          (Name.to_string a.Attribute.name)
          (Name.to_string b.Attribute.name));
  }

let domain_signal =
  {
    signal_name = "domain";
    score =
      (fun a b ->
        if Domain.equal a.Attribute.domain b.Attribute.domain then 1.0
        else if Domain.compatible a.Attribute.domain b.Attribute.domain then 0.7
        else 0.0);
  }

let key_signal =
  {
    signal_name = "key";
    score = (fun a b -> if a.Attribute.key = b.Attribute.key then 1.0 else 0.0);
  }

type weighted = (float * attr_signal) list

let default_weights dict =
  [
    (0.45, name_signal);
    (0.25, synonym_signal dict);
    (0.2, domain_signal);
    (0.1, key_signal);
  ]

let attribute_score weighted a b =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then 0.0
  else
    List.fold_left (fun acc (w, s) -> acc +. (w *. s.score a b)) 0.0 weighted
    /. total

(* Greedy best-first one-to-one matching over the cross product. *)
let greedy_matching weighted attrs1 attrs2 =
  let candidates =
    List.concat_map
      (fun a ->
        List.map (fun b -> (a, b, attribute_score weighted a b)) attrs2)
      attrs1
  in
  let sorted =
    List.sort (fun (_, _, x) (_, _, y) -> Float.compare y x) candidates
  in
  let rec pick used1 used2 acc = function
    | [] -> List.rev acc
    | (a, b, s) :: rest ->
        if
          List.exists (Attribute.equal a) used1
          || List.exists (Attribute.equal b) used2
        then pick used1 used2 acc rest
        else pick (a :: used1) (b :: used2) ((a, b, s) :: acc) rest
  in
  pick [] [] [] sorted

let suggest_equivalences ?(threshold = 0.55) weighted (s1, oc1) (s2, oc2) =
  greedy_matching weighted oc1.Object_class.attributes oc2.Object_class.attributes
  |> List.filter (fun (_, _, s) -> s >= threshold)
  |> List.map (fun (a, b, s) ->
         ( Schema.attr_qname s1 oc1.Object_class.name a.Attribute.name,
           Schema.attr_qname s2 oc2.Object_class.name b.Attribute.name,
           s ))

let object_score weighted oc1 oc2 =
  let class_name_sim =
    Strings.name_similarity
      (Name.to_string oc1.Object_class.name)
      (Name.to_string oc2.Object_class.name)
  in
  let attrs1 = oc1.Object_class.attributes
  and attrs2 = oc2.Object_class.attributes in
  let attr_mass =
    match greedy_matching weighted attrs1 attrs2 with
    | [] -> 0.0
    | matches ->
        let mass = List.fold_left (fun acc (_, _, s) -> acc +. s) 0.0 matches in
        let smaller = Int.min (List.length attrs1) (List.length attrs2) in
        if smaller = 0 then 0.0 else mass /. float_of_int smaller
  in
  (class_name_sim +. attr_mass) /. 2.0
