module StringMap = Map.Make (String)
module StringSet = Set.Make (String)

type t = {
  ring_of : int StringMap.t;  (** word -> ring id (index into [members]) *)
  members : StringSet.t list;
  antonyms : (string * string) list;
}

let empty = { ring_of = StringMap.empty; members = []; antonyms = [] }

let norm = Strings.normalize

let ring_members dict id = List.nth dict.members id

let add_synonyms words dict =
  let words = List.map norm words |> List.filter (fun w -> w <> "") in
  match words with
  | [] -> dict
  | _ ->
      let existing_ids =
        List.filter_map (fun w -> StringMap.find_opt w dict.ring_of) words
        |> List.sort_uniq Int.compare
      in
      let merged =
        List.fold_left
          (fun acc id -> StringSet.union acc (ring_members dict id))
          (StringSet.of_list words) existing_ids
      in
      (* rebuild: drop merged rings, append the union *)
      let kept =
        List.filteri (fun i _ -> not (List.mem i existing_ids)) dict.members
      in
      let members = kept @ [ merged ] in
      let ring_of =
        List.fold_left
          (fun acc (i, set) ->
            StringSet.fold (fun w acc -> StringMap.add w i acc) set acc)
          StringMap.empty
          (List.mapi (fun i set -> (i, set)) members)
      in
      { dict with ring_of; members }

let add_antonyms a b dict = { dict with antonyms = (norm a, norm b) :: dict.antonyms }

let of_groups ?(antonyms = []) groups =
  let dict = List.fold_left (fun d g -> add_synonyms g d) empty groups in
  List.fold_left (fun d (a, b) -> add_antonyms a b d) dict antonyms

let synonyms w dict =
  let w = norm w in
  match StringMap.find_opt w dict.ring_of with
  | None -> []
  | Some id ->
      StringSet.elements (StringSet.remove w (ring_members dict id))

let are_synonyms a b dict =
  let a = norm a and b = norm b in
  a = b
  ||
  match (StringMap.find_opt a dict.ring_of, StringMap.find_opt b dict.ring_of) with
  | Some x, Some y -> x = y
  | _ -> false

let are_antonyms a b dict =
  let a = norm a and b = norm b in
  List.exists
    (fun (x, y) -> (x = a && y = b) || (x = b && y = a))
    dict.antonyms

let token_similarity dict a b =
  let ta = Strings.tokens a and tb = Strings.tokens b in
  if ta = [] || tb = [] then 0.0
  else begin
    let short, long =
      if List.length ta <= List.length tb then (ta, tb) else (tb, ta)
    in
    let score =
      List.fold_left
        (fun acc t ->
          if List.exists (fun u -> are_synonyms t u dict) long then acc +. 1.0
          else if List.exists (fun u -> are_antonyms t u dict) long then acc -. 1.0
          else acc)
        0.0 short
    in
    Float.max 0.0 (Float.min 1.0 (score /. float_of_int (List.length short)))
  end

let default =
  of_groups
    ~antonyms:
      [
        ("undergraduate", "graduate");
        ("min", "max");
        ("start", "end");
        ("first", "last");
      ]
    [
      [ "name"; "title"; "label" ];
      [ "dept"; "department"; "division" ];
      [ "id"; "identifier"; "number"; "num"; "no" ];
      [ "ssn"; "socialsecuritynumber" ];
      [ "salary"; "pay"; "wage"; "compensation" ];
      [ "gpa"; "gradepointaverage"; "grade" ];
      [ "phone"; "telephone"; "tel" ];
      [ "addr"; "address"; "location"; "loc" ];
      [ "dob"; "birthdate"; "birthday" ];
      [ "emp"; "employee"; "worker"; "staff" ];
      [ "mgr"; "manager"; "supervisor"; "boss" ];
      [ "student"; "pupil" ];
      [ "faculty"; "instructor"; "professor"; "teacher"; "lecturer" ];
      [ "course"; "class"; "subject" ];
      [ "project"; "proj" ];
      [ "budget"; "funds"; "funding" ];
      [ "office"; "room" ];
      [ "major"; "specialization"; "concentration" ];
      [ "advisor"; "adviser"; "mentor" ];
      [ "date"; "day" ];
      [ "type"; "kind"; "category" ];
      [ "support"; "funding" ];
      [ "works"; "employedby"; "employment" ];
    ]

let size dict = StringMap.cardinal dict.ring_of
