(** Schema-level resemblance.

    The paper's section 4: "The resemblance function among objects could
    possibly be extended to derive a resemblance function [between]
    schemas, which could be particularly useful in picking similar
    schemas for integration in a binary approach."  Used by the binary
    integration strategies in the benchmark harness to pick the next
    pair of schemas to merge. *)

val score : Resemblance.weighted -> Ecr.Schema.t -> Ecr.Schema.t -> float
(** Mean of the best object-level resemblance of every object class of
    the smaller schema against the other schema's classes; in [0, 1]. *)

val rank_pairs :
  Resemblance.weighted ->
  Ecr.Schema.t list ->
  (Ecr.Name.t * Ecr.Name.t * float) list
(** All unordered schema pairs ordered by decreasing resemblance. *)

val most_similar_pair :
  Resemblance.weighted -> Ecr.Schema.t list -> (Ecr.Schema.t * Ecr.Schema.t) option
(** The pair a similarity-guided binary strategy should integrate
    next; [None] when fewer than two schemas remain. *)
