open Ecr

type candidate = {
  entity_side : Qname.t;
  relationship_side : Qname.t;
  shared_attributes : (Name.t * Name.t * float) list;
  score : float;
}

let matching weighted attrs1 attrs2 threshold =
  let candidates =
    List.concat_map
      (fun a ->
        List.map
          (fun b -> (a, b, Resemblance.attribute_score weighted a b))
          attrs2)
      attrs1
  in
  let sorted =
    List.sort (fun (_, _, x) (_, _, y) -> Float.compare y x) candidates
  in
  let rec pick used1 used2 acc = function
    | [] -> List.rev acc
    | (a, b, s) :: rest ->
        if
          s < threshold
          || List.exists (Attribute.equal a) used1
          || List.exists (Attribute.equal b) used2
        then pick used1 used2 acc rest
        else pick (a :: used1) (b :: used2) ((a, b, s) :: acc) rest
  in
  pick [] [] [] sorted

let candidate weighted threshold (s_obj, oc) (s_rel, r) =
  let matches =
    matching weighted oc.Object_class.attributes r.Relationship.attributes
      threshold
  in
  if List.length matches < 2 then None
  else begin
    let smaller =
      Int.min
        (List.length oc.Object_class.attributes)
        (List.length r.Relationship.attributes)
    in
    let score =
      if smaller = 0 then 0.0
      else float_of_int (List.length matches) /. float_of_int smaller
    in
    Some
      {
        entity_side = Schema.qname s_obj oc.Object_class.name;
        relationship_side = Schema.qname s_rel r.Relationship.name;
        shared_attributes =
          List.map
            (fun (a, b, s) -> (a.Attribute.name, b.Attribute.name, s))
            matches;
        score;
      }
  end

let detect ?(threshold = 0.6) weighted s1 s2 =
  let one_direction s_obj s_rel =
    List.concat_map
      (fun oc ->
        List.filter_map
          (fun r -> candidate weighted threshold (s_obj, oc) (s_rel, r))
          (Schema.relationships s_rel))
      (Schema.objects s_obj)
  in
  one_direction s1 s2 @ one_direction s2 s1
  |> List.sort (fun a b -> Float.compare b.score a.score)
