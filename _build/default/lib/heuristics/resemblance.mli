(** Composable resemblance functions over attribute and object pairs.

    The paper's core tool uses a single resemblance function (the
    attribute ratio over DDA-declared equivalences, implemented in the
    integration engine).  Section 4 proposes, after SIS (de Souza 86),
    {e several} resemblance functions combined as a weighted sum of
    products; this module provides that machinery.  Scores are in
    [0, 1]. *)

type attr_signal = {
  signal_name : string;
  score : Ecr.Attribute.t -> Ecr.Attribute.t -> float;
}

val name_signal : attr_signal
(** {!Strings.name_similarity} on attribute names. *)

val synonym_signal : Synonyms.t -> attr_signal
(** {!Synonyms.token_similarity} on attribute names. *)

val domain_signal : attr_signal
(** 1.0 on equal domains, 0.7 on compatible, 0.0 otherwise. *)

val key_signal : attr_signal
(** 1.0 when the key flags agree, 0.0 otherwise ("uniqueness" in the
    paper's list of attribute characteristics). *)

type weighted = (float * attr_signal) list

val default_weights : Synonyms.t -> weighted
(** name 0.45, synonyms 0.25, domain 0.2, key 0.1. *)

val attribute_score : weighted -> Ecr.Attribute.t -> Ecr.Attribute.t -> float
(** Weighted sum, normalised by total weight. *)

val suggest_equivalences :
  ?threshold:float ->
  weighted ->
  Ecr.Schema.t * Ecr.Object_class.t ->
  Ecr.Schema.t * Ecr.Object_class.t ->
  (Ecr.Qname.Attr.t * Ecr.Qname.Attr.t * float) list
(** Greedy one-to-one matching of the two classes' attributes with
    scores at or above [threshold] (default 0.55), best-first: the
    candidate attribute equivalences the tool proposes to the DDA. *)

val object_score :
  weighted -> Ecr.Object_class.t -> Ecr.Object_class.t -> float
(** Object-level resemblance: mean of name similarity of the class
    names and the greedy attribute-matching mass, following the SIS
    "weighted sum of products" suggestion. *)
