lib/heuristics/synonyms.ml: Float Int List Map Set String Strings
