lib/heuristics/construct.ml: Attribute Ecr Float Int List Name Object_class Qname Relationship Resemblance Schema
