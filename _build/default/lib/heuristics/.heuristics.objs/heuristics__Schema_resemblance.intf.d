lib/heuristics/schema_resemblance.mli: Ecr Resemblance
