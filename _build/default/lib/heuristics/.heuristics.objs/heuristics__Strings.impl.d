lib/heuristics/strings.ml: Array Buffer Char Float Fun Hashtbl Int List Option Set String
