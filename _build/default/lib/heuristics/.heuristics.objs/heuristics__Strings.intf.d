lib/heuristics/strings.mli:
