lib/heuristics/schema_resemblance.ml: Ecr Float List Resemblance Schema
