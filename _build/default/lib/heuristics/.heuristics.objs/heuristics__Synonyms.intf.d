lib/heuristics/synonyms.mli:
