lib/heuristics/resemblance.ml: Attribute Domain Ecr Float Int List Name Object_class Schema Strings Synonyms
