lib/heuristics/construct.mli: Ecr Resemblance
