lib/heuristics/resemblance.mli: Ecr Synonyms
