let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let normalize s =
  let buf = Buffer.create (String.length s) in
  String.iter (fun c -> if is_alnum c then Buffer.add_char buf (Char.lowercase_ascii c)) s;
  Buffer.contents buf

let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = c >= 'a' && c <= 'z'
let is_digit c = c >= '0' && c <= '9'

let tokens s =
  let n = String.length s in
  let out = ref [] and buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if not (is_alnum c) then flush ()
    else begin
      (* case boundary: lower->Upper, or Upper followed by lower after a
         run of uppers (e.g. "HTTPServer" -> "http", "server") *)
      let boundary =
        i > 0
        && ((is_lower s.[i - 1] && is_upper c)
           || (is_digit c && not (is_digit s.[i - 1]))
           || ((not (is_digit c)) && is_digit s.[i - 1])
           || (i + 1 < n && is_upper s.[i - 1] && is_upper c && is_lower s.[i + 1]))
      in
      if boundary then flush ();
      Buffer.add_char buf c
    end
  done;
  flush ();
  List.rev !out

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <-
          Int.min (Int.min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let levenshtein_similarity a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else 1.0 -. (float_of_int (levenshtein a b) /. float_of_int (Int.max la lb))

let bigrams s =
  let n = String.length s in
  if n < 2 then (if n = 0 then [] else [ s ])
  else List.init (n - 1) (fun i -> String.sub s i 2)

let dice_bigrams a b =
  let ba = bigrams a and bb = bigrams b in
  if ba = [] && bb = [] then 1.0
  else if ba = [] || bb = [] then 0.0
  else begin
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun g -> Hashtbl.replace tbl g (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g)))
      ba;
    let matches = ref 0 in
    List.iter
      (fun g ->
        match Hashtbl.find_opt tbl g with
        | Some k when k > 0 ->
            incr matches;
            Hashtbl.replace tbl g (k - 1)
        | _ -> ())
      bb;
    2.0 *. float_of_int !matches /. float_of_int (List.length ba + List.length bb)
  end

let jaro a b =
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else if la = 0 || lb = 0 then 0.0
  else begin
    let window = Int.max 0 ((Int.max la lb / 2) - 1) in
    let matched_a = Array.make la false and matched_b = Array.make lb false in
    let matches = ref 0 in
    for i = 0 to la - 1 do
      let lo = Int.max 0 (i - window) and hi = Int.min (lb - 1) (i + window) in
      let rec look j =
        if j > hi then ()
        else if (not matched_b.(j)) && a.[i] = b.[j] then begin
          matched_a.(i) <- true;
          matched_b.(j) <- true;
          incr matches
        end
        else look (j + 1)
      in
      look lo
    done;
    if !matches = 0 then 0.0
    else begin
      (* transpositions: compare matched characters in order *)
      let seq arr s =
        let out = ref [] in
        Array.iteri (fun i m -> if m then out := s.[i] :: !out) arr;
        List.rev !out
      in
      let sa = seq matched_a a and sb = seq matched_b b in
      let transpositions =
        List.fold_left2
          (fun acc x y -> if x <> y then acc + 1 else acc)
          0 sa sb
        / 2
      in
      let m = float_of_int !matches in
      (m /. float_of_int la
      +. m /. float_of_int lb
      +. (m -. float_of_int transpositions) /. m)
      /. 3.0
    end
  end

let jaro_winkler ?(prefix_scale = 0.1) a b =
  let j = jaro a b in
  let max_prefix = 4 in
  let rec prefix i =
    if i < max_prefix && i < String.length a && i < String.length b && a.[i] = b.[i]
    then 1 + prefix (i + 1)
    else 0
  in
  let l = float_of_int (prefix 0) in
  j +. (l *. prefix_scale *. (1.0 -. j))

module StringSet = Set.Make (String)

let token_overlap a b =
  let ta = StringSet.of_list (tokens a) and tb = StringSet.of_list (tokens b) in
  if StringSet.is_empty ta && StringSet.is_empty tb then 1.0
  else
    let inter = StringSet.cardinal (StringSet.inter ta tb)
    and union = StringSet.cardinal (StringSet.union ta tb) in
    if union = 0 then 0.0 else float_of_int inter /. float_of_int union

let is_prefix short long =
  String.length short <= String.length long
  && String.sub long 0 (String.length short) = short

let initials_subsequence short long =
  (* every character of [short] appears in [long] in order, with the
     first characters agreeing (so "gpa" matches "gradepointaverage") *)
  let ls = String.length short and ll = String.length long in
  if ls = 0 || ll = 0 || short.[0] <> long.[0] then false
  else begin
    let rec walk i j =
      if i >= ls then true
      else if j >= ll then false
      else if short.[i] = long.[j] then walk (i + 1) (j + 1)
      else walk i (j + 1)
    in
    walk 0 0
  end

let abbreviation_of a b =
  let na = normalize a and nb = normalize b in
  let short, long = if String.length na <= String.length nb then (na, nb) else (nb, na) in
  String.length short >= 2
  && String.length long > String.length short
  && (is_prefix short long || initials_subsequence short long)

let name_similarity a b =
  if abbreviation_of a b then 1.0
  else begin
    let na = normalize a and nb = normalize b in
    let scores =
      [
        levenshtein_similarity na nb;
        dice_bigrams na nb;
        jaro_winkler na nb;
        token_overlap a b;
      ]
    in
    List.fold_left Float.max 0.0 scores
  end
