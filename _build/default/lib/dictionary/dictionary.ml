open Ecr

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let marker = "%session"

(* ------------------------------------------------------------------ *)
(* Serialisation.                                                      *)

let directive_lines ws =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun cls ->
      match cls with
      | first :: rest ->
          List.iter
            (fun other ->
              out "equiv %s %s\n"
                (Qname.Attr.to_string first)
                (Qname.Attr.to_string other))
            rest
      | [] -> ())
    (Integrate.Equivalence.nontrivial_classes
       (Integrate.Workspace.equivalence ws));
  List.iter
    (fun (l, assertion, r) ->
      out "object %s %d %s\n" (Qname.to_string l)
        (Integrate.Assertion.code assertion)
        (Qname.to_string r))
    (Integrate.Workspace.object_facts ws);
  List.iter
    (fun (l, assertion, r) ->
      out "rel %s %d %s\n" (Qname.to_string l)
        (Integrate.Assertion.code assertion)
        (Qname.to_string r))
    (Integrate.Workspace.relationship_facts ws);
  List.iter
    (fun (a, b, forced) ->
      out "name %s %s %s\n" (Qname.to_string a) (Qname.to_string b)
        (Name.to_string forced))
    (Integrate.Naming.overrides (Integrate.Workspace.naming ws));
  Buffer.contents buf

let to_string ws =
  "-- sit data dictionary\n"
  ^ Ddl.Printer.schemas_to_string (Integrate.Workspace.schemas ws)
  ^ "\n" ^ marker ^ "\n" ^ directive_lines ws

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)

let parse_qattr lineno s =
  match String.split_on_char '.' s with
  | [ a; b; c ] -> (
      try Qname.Attr.v a b c
      with Name.Invalid _ -> error "line %d: bad attribute %s" lineno s)
  | _ -> error "line %d: expected schema.object.attr, got %s" lineno s

let parse_qname lineno s =
  match String.split_on_char '.' s with
  | [ a; b ] -> (
      try Qname.v a b
      with Name.Invalid _ -> error "line %d: bad name %s" lineno s)
  | _ -> error "line %d: expected schema.object, got %s" lineno s

let parse_code lineno s =
  match Option.bind (int_of_string_opt s) Integrate.Assertion.of_code with
  | Some a -> a
  | None -> error "line %d: unknown assertion code %s" lineno s

let apply_directive ~strict ws lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
  with
  | [] -> ws
  | [ "equiv"; a; b ] ->
      Integrate.Workspace.declare_equivalent (parse_qattr lineno a)
        (parse_qattr lineno b) ws
  | [ "object"; a; code; b ] -> (
      match
        Integrate.Workspace.assert_object (parse_qname lineno a)
          (parse_code lineno code) (parse_qname lineno b) ws
      with
      | Ok ws -> ws
      | Error _ when not strict -> ws
      | Error c ->
          error "line %d: assertion conflicts with earlier ones (%s vs %s)"
            lineno
            (Qname.to_string c.Integrate.Assertions.left)
            (Qname.to_string c.Integrate.Assertions.right))
  | [ "rel"; a; code; b ] -> (
      match
        Integrate.Workspace.assert_relationship (parse_qname lineno a)
          (parse_code lineno code) (parse_qname lineno b) ws
      with
      | Ok ws -> ws
      | Error _ when not strict -> ws
      | Error _ -> error "line %d: relationship assertion conflicts" lineno)
  | [ "name"; a; b; forced ] ->
      Integrate.Workspace.set_naming
        (Integrate.Naming.with_override (parse_qname lineno a)
           (parse_qname lineno b) forced
           (Integrate.Workspace.naming ws))
        ws
  | _ -> error "line %d: unparseable directive: %s" lineno line

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec split before = function
    | [] -> (List.rev before, [])
    | l :: rest when String.trim l = marker -> (List.rev before, rest)
    | l :: rest -> split (l :: before) rest
  in
  let schema_lines, session_lines = split [] lines in
  let schemas =
    try Ddl.Parser.schemas_of_string (String.concat "\n" schema_lines)
    with Ddl.Parser.Error (msg, line, col) ->
      error "schema section %d:%d: %s" line col msg
  in
  let ws =
    List.fold_left
      (fun ws s ->
        match Schema.validate s with
        | [] -> Integrate.Workspace.add_schema s ws
        | e :: _ ->
            error "schema %s: %s"
              (Name.to_string (Schema.name s))
              (Schema.error_to_string e))
      Integrate.Workspace.empty schemas
  in
  let offset = List.length schema_lines + 1 in
  (* the session section ends at the next %-marker (an %integrated or
     %mappings section appended by [result_to_string]) *)
  let rec until_marker acc = function
    | [] -> List.rev acc
    | l :: _ when String.length (String.trim l) > 0 && (String.trim l).[0] = '%'
      ->
        List.rev acc
    | l :: rest -> until_marker (l :: acc) rest
  in
  List.fold_left
    (fun (ws, lineno) line -> (apply_directive ~strict:true ws lineno line, lineno + 1))
    (ws, offset + 1)
    (until_marker [] session_lines)
  |> fst

let save path ws =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ws))

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string text

let merge base extra =
  let ws =
    List.fold_left
      (fun ws s -> Integrate.Workspace.add_schema s ws)
      base
      (Integrate.Workspace.schemas extra)
  in
  let ws =
    List.fold_left
      (fun ws cls ->
        match cls with
        | first :: rest ->
            List.fold_left
              (fun ws other ->
                Integrate.Workspace.declare_equivalent first other ws)
              ws rest
        | [] -> ws)
      ws
      (Integrate.Equivalence.nontrivial_classes
         (Integrate.Workspace.equivalence extra))
  in
  let ws =
    List.fold_left
      (fun ws (l, a, r) ->
        match Integrate.Workspace.assert_object l a r ws with
        | Ok ws -> ws
        | Error _ -> ws)
      ws
      (Integrate.Workspace.object_facts extra)
  in
  let ws =
    List.fold_left
      (fun ws (l, a, r) ->
        match Integrate.Workspace.assert_relationship l a r ws with
        | Ok ws -> ws
        | Error _ -> ws)
      ws
      (Integrate.Workspace.relationship_facts extra)
  in
  List.fold_left
    (fun ws (a, b, forced) ->
      Integrate.Workspace.set_naming
        (Integrate.Naming.with_override a b (Name.to_string forced)
           (Integrate.Workspace.naming ws))
        ws)
    ws
    (Integrate.Naming.overrides (Integrate.Workspace.naming extra))

(* ------------------------------------------------------------------ *)
(* Mappings.                                                           *)

let integrated_marker = "%integrated"
let mappings_marker = "%mappings"

let mapping_lines (result : Integrate.Result.t) =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let entry kind akind (e : Integrate.Mapping.entry) =
    out "%s %s -> %s\n" kind
      (Qname.to_string e.Integrate.Mapping.source)
      (Name.to_string e.Integrate.Mapping.target);
    Name.Map.iter
      (fun attr t ->
        out "%s %s.%s -> %s.%s\n" akind
          (Qname.to_string e.Integrate.Mapping.source)
          (Name.to_string attr)
          (Name.to_string t.Integrate.Mapping.in_class)
          (Name.to_string t.Integrate.Mapping.as_attr))
      e.Integrate.Mapping.attrs
  in
  List.iter (entry "object" "attr")
    (Integrate.Mapping.object_entries result.Integrate.Result.mapping);
  List.iter (entry "rel" "rattr")
    (Integrate.Mapping.relationship_entries result.Integrate.Result.mapping);
  Buffer.contents buf

let result_to_string ws (result : Integrate.Result.t) =
  to_string ws ^ "\n" ^ integrated_marker ^ "\n"
  ^ Ddl.Printer.to_string result.Integrate.Result.schema
  ^ "\n\n" ^ mappings_marker ^ "\n" ^ mapping_lines result

let mappings_of_string text =
  let lines = String.split_on_char '\n' text in
  let rec skip = function
    | [] -> []
    | l :: rest when String.trim l = mappings_marker -> rest
    | _ :: rest -> skip rest
  in
  let section = skip lines in
  let parse_target lineno s =
    match String.split_on_char '.' s with
    | [ c; a ] -> (
        try { Integrate.Mapping.in_class = Name.v c; as_attr = Name.v a }
        with Name.Invalid _ -> error "line %d: bad target %s" lineno s)
    | _ -> error "line %d: expected class.attr, got %s" lineno s
  in
  let parse_src_attr lineno s =
    match String.split_on_char '.' s with
    | [ sch; obj; attr ] -> (
        try (Qname.v sch obj, Name.v attr)
        with Name.Invalid _ -> error "line %d: bad source %s" lineno s)
    | _ -> error "line %d: expected schema.object.attr, got %s" lineno s
  in
  let add_attr is_rel src attr target mapping =
    let entry =
      match
        if is_rel then Integrate.Mapping.relationship_entry src mapping
        else Integrate.Mapping.object_entry src mapping
      with
      | Some e -> e
      | None ->
          { Integrate.Mapping.source = src; target = src.Qname.obj;
            attrs = Name.Map.empty }
    in
    let entry =
      { entry with
        Integrate.Mapping.attrs = Name.Map.add attr target entry.Integrate.Mapping.attrs
      }
    in
    if is_rel then Integrate.Mapping.add_relationship entry mapping
    else Integrate.Mapping.add_object entry mapping
  in
  List.fold_left
    (fun (mapping, lineno) line ->
      let mapping =
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun s -> s <> "")
        with
        | [] -> mapping
        | [ "object"; src; "->"; target ] -> (
            try
              Integrate.Mapping.add_object
                { Integrate.Mapping.source =
                    (match String.split_on_char '.' src with
                    | [ a; b ] -> Qname.v a b
                    | _ -> error "line %d: bad source %s" lineno src);
                  target = Name.v target;
                  attrs =
                    (match
                       Integrate.Mapping.object_entry
                         (match String.split_on_char '.' src with
                         | [ a; b ] -> Qname.v a b
                         | _ -> assert false)
                         mapping
                     with
                    | Some e -> e.Integrate.Mapping.attrs
                    | None -> Name.Map.empty);
                }
                mapping
            with Name.Invalid _ -> error "line %d: bad names" lineno)
        | [ "rel"; src; "->"; target ] -> (
            try
              Integrate.Mapping.add_relationship
                { Integrate.Mapping.source =
                    (match String.split_on_char '.' src with
                    | [ a; b ] -> Qname.v a b
                    | _ -> error "line %d: bad source %s" lineno src);
                  target = Name.v target;
                  attrs =
                    (match
                       Integrate.Mapping.relationship_entry
                         (match String.split_on_char '.' src with
                         | [ a; b ] -> Qname.v a b
                         | _ -> assert false)
                         mapping
                     with
                    | Some e -> e.Integrate.Mapping.attrs
                    | None -> Name.Map.empty);
                }
                mapping
            with Name.Invalid _ -> error "line %d: bad names" lineno)
        | [ "attr"; src; "->"; target ] ->
            let q, attr = parse_src_attr lineno src in
            add_attr false q attr (parse_target lineno target) mapping
        | [ "rattr"; src; "->"; target ] ->
            let q, attr = parse_src_attr lineno src in
            add_attr true q attr (parse_target lineno target) mapping
        | _ -> error "line %d: unparseable mapping line: %s" lineno line
      in
      (mapping, lineno + 1))
    (Integrate.Mapping.empty, 1)
    section
  |> fst
