(** The data dictionary: persistent workspace state.

    The paper's section 4 proposes that "a common representation of the
    database objects and the mappings between them could be kept in a
    data dictionary available to all of the tools" — the schema
    translation tool feeding the integration tool feeding physical
    design.  This module is that representation: one plain-text file
    carrying everything a session produced (component schemas in the ECR
    DDL, attribute equivalences, assertions, naming overrides), loadable
    back into a {!Integrate.Workspace}.

    Format: the schemas in DDL syntax, then a [%session] marker, then
    one directive per line ([#] comments allowed):

    {v
    schema sc1 { ... }
    schema sc2 { ... }
    %session
    equiv  sc1.Student.Name sc2.Grad_student.Name
    object sc1.Department 1 sc2.Department
    rel    sc1.Majors 1 sc2.Major_in
    name   sc1.Majors sc2.Major_in E_Stud_Majo
    v}

    Assertion codes are the screens' menu numbers (1 equals,
    2 contained-in, 3 contains, 4 disjoint-integrable, 5 may-be,
    0 disjoint-nonintegrable). *)

exception Error of string
(** Malformed dictionary text (with a line-level description). *)

val to_string : Integrate.Workspace.t -> string
(** Serialises a workspace. *)

val of_string : string -> Integrate.Workspace.t
(** Parses a dictionary.  Recorded assertions are replayed through the
    matrix, so a dictionary edited into inconsistency is rejected.
    @raise Error on syntax errors or conflicting assertions. *)

val save : string -> Integrate.Workspace.t -> unit
(** Writes {!to_string} to a file. *)

val load : string -> Integrate.Workspace.t
(** Reads and parses a file.  @raise Error / [Sys_error]. *)

val merge : Integrate.Workspace.t -> Integrate.Workspace.t -> Integrate.Workspace.t
(** [merge base extra] adds [extra]'s schemas, equivalences and
    consistent assertions into [base]; assertions of [extra] that
    conflict with [base] are dropped.  The dictionary is "available to
    all of the tools": two tools' dictionaries can be combined. *)

(** {1 Mappings}

    "A common representation of the database objects {e and the mappings
    between them}".  After integration, the generated mappings can be
    appended as a [%mappings] section so a downstream tool (a query
    processor, a physical designer) can translate requests without
    re-running integration:

    {v
    %mappings
    object sc1.Student -> Student
    attr sc1.Student.Name -> D_Stud_Facu.D_Name
    rel sc1.Majors -> E_Stud_Majo
    rattr sc1.Majors.Since -> E_Stud_Majo.D_Since
    v} *)

val result_to_string :
  Integrate.Workspace.t -> Integrate.Result.t -> string
(** The full dictionary ({!to_string}) followed by the integrated schema
    (as another DDL block under [%integrated]) and the [%mappings]
    section. *)

val mappings_of_string : string -> Integrate.Mapping.t
(** Reconstructs the mapping from a dictionary containing a [%mappings]
    section (empty mapping when the section is absent).
    @raise Error on malformed mapping lines. *)
