open Ecr

let columns = 80
let rows = 24

let blank () =
  let c = Canvas.create columns rows in
  Canvas.frame c;
  c

let header c title subtitle =
  Canvas.text_center c 1 title;
  Canvas.text_center c 2 ("< " ^ subtitle ^ " >");
  Canvas.hline c 1 3 (columns - 2) '-'

let menu_line c s = Canvas.text c 3 (rows - 2) s

let name_str = Name.to_string

(* ------------------------------------------------------------------ *)

let main_menu () =
  let c = blank () in
  header c "SCHEMA INTEGRATION TOOL" "Main Menu";
  let items =
    [
      "1 - Define schemas to be integrated";
      "2 - Specify equivalence among attributes of object classes";
      "3 - Specify assertions between object classes";
      "4 - Specify equivalence among attributes of relationship sets";
      "5 - Specify assertions between relationship sets";
      "6 - View results of integration";
    ]
  in
  List.iteri (fun i s -> Canvas.text c 8 (6 + (i * 2)) s) items;
  Canvas.text c 8 18 "A - Report schema-analysis incompatibilities";
  menu_line c "Choose a task, or (E)xit => ";
  c

(* ------------------------------------------------------------------ *)

let schema_name_collection ~names =
  let c = blank () in
  header c "SCHEMA COLLECTION" "Schema Name Collection Screen";
  Canvas.text c 6 5 "Schema Name";
  List.iteri
    (fun i n -> Canvas.text c 6 (7 + i) (Printf.sprintf "%d> %s" (i + 1) n))
    names;
  menu_line c "Choose: (A)dd (D)elete (U)pdate (E)xit => ";
  c

let drop offset l = List.filteri (fun i _ -> i >= offset) l

let structure_information ?(offset = 0) schema =
  let c = blank () in
  header c "SCHEMA COLLECTION" "Structure Information Collection Screen";
  Canvas.text c 6 4 ("SCHEMA NAME: " ^ name_str (Schema.name schema));
  Canvas.text c 6 6 "Object Name";
  Canvas.text c 32 6 "Type(E/C/R)";
  Canvas.text c 50 6 "# of attributes";
  let row = ref 8 in
  let emit index name kind count =
    if !row < rows - 3 then begin
      Canvas.text c 6 !row (Printf.sprintf "%d> %s" (index + 1) name);
      Canvas.put c 34 !row kind;
      Canvas.text c 53 !row (string_of_int count);
      incr row
    end
  in
  List.iteri
    (fun i s ->
      let index = offset + i in
      match s with
      | Schema.Obj oc ->
          emit index
            (name_str oc.Object_class.name)
            (Object_class.kind_letter oc)
            (List.length oc.Object_class.attributes)
      | Schema.Rel r ->
          emit index
            (name_str r.Relationship.name)
            'r'
            (List.length r.Relationship.attributes))
    (drop offset (Schema.structures schema));
  menu_line c "Choose: (S)croll (A)dd (D)elete (U)pdate (E)xit => ";
  c

let category_information schema cat =
  let c = blank () in
  header c "SCHEMA COLLECTION" "Category Information Collection Screen";
  Canvas.text c 6 4 ("SCHEMA NAME: " ^ name_str (Schema.name schema));
  Canvas.text c 6 5 ("CATEGORY NAME: " ^ name_str cat);
  Canvas.text c 6 7 "Connected Object";
  Canvas.text c 40 7 "Type(E/C)";
  (match Schema.find_object cat schema with
  | Some oc ->
      List.iteri
        (fun i p ->
          Canvas.text c 6 (9 + i) (Printf.sprintf "%d> %s" (i + 1) (name_str p));
          let letter =
            match Schema.find_object p schema with
            | Some parent -> Object_class.kind_letter parent
            | None -> '?'
          in
          Canvas.put c 42 (9 + i) letter)
        (Object_class.parents oc)
  | None -> Canvas.text c 6 9 "(unknown category)");
  menu_line c "Choose: (A)dd (D)elete (E)xit => ";
  c

let relationship_information schema rel =
  let c = blank () in
  header c "SCHEMA COLLECTION" "Relationship Information Collection Screen";
  Canvas.text c 6 4 ("SCHEMA NAME: " ^ name_str (Schema.name schema));
  Canvas.text c 6 5 ("RELATIONSHIP NAME: " ^ name_str rel);
  Canvas.text c 6 7 "Connected Object";
  Canvas.text c 36 7 "Cardinality";
  Canvas.text c 54 7 "Role";
  (match Schema.find_relationship rel schema with
  | Some r ->
      List.iteri
        (fun i p ->
          Canvas.text c 6 (9 + i)
            (Printf.sprintf "%d> %s" (i + 1) (name_str p.Relationship.obj));
          Canvas.text c 36 (9 + i) (Cardinality.to_string p.Relationship.card);
          match p.Relationship.role with
          | Some role -> Canvas.text c 54 (9 + i) (name_str role)
          | None -> ())
        r.Relationship.participants
  | None -> Canvas.text c 6 9 "(unknown relationship)");
  menu_line c "Choose: (A)dd (D)elete (E)xit => ";
  c

let find_attrs schema structure =
  match Schema.find_structure structure schema with
  | Some (Schema.Obj oc) ->
      Some (Object_class.kind_letter oc, oc.Object_class.attributes)
  | Some (Schema.Rel r) -> Some ('r', r.Relationship.attributes)
  | None -> None

let attribute_information ?(offset = 0) schema structure =
  let c = blank () in
  header c "SCHEMA COLLECTION" "Attribute Information Collection Screen";
  (match find_attrs schema structure with
  | Some (letter, attrs) ->
      Canvas.text c 4 4
        (Printf.sprintf "SCHEMA NAME: %s   OBJECT NAME: %s   TYPE: %c"
           (name_str (Schema.name schema))
           (name_str structure) letter);
      Canvas.text c 6 6 "Attribute Name";
      Canvas.text c 32 6 "Domain";
      Canvas.text c 56 6 "Key (y/n)";
      List.iteri
        (fun i a ->
          if 8 + i < rows - 3 then begin
            Canvas.text c 6 (8 + i)
              (Printf.sprintf "%d> %s" (offset + i + 1) (name_str a.Attribute.name));
            Canvas.text c 32 (8 + i) (Domain.to_string a.Attribute.domain);
            Canvas.put c 58 (8 + i) (if a.Attribute.key then 'y' else 'n')
          end)
        (drop offset attrs)
  | None -> Canvas.text c 6 6 "(unknown structure)");
  menu_line c "Choose: (S)croll (A)dd (D)elete (E)xit => ";
  c

(* ------------------------------------------------------------------ *)

let object_selection s1 s2 =
  let c = blank () in
  header c "EQUIVALENCE SPECIFICATION" "Entity/Category Name Selection Screen";
  let col schema x =
    Canvas.text c x 5 ("SCHEMA: " ^ name_str (Schema.name schema));
    List.iteri
      (fun i oc ->
        Canvas.text c x (7 + i)
          (Printf.sprintf "%d> %s (%c)" (i + 1)
             (name_str oc.Object_class.name)
             (Object_class.kind_letter oc)))
      (Schema.objects schema)
  in
  col s1 8;
  col s2 44;
  Canvas.vline c 40 4 (rows - 7) '|';
  menu_line c "Pick one object from each schema, or (E)xit => ";
  c

let equivalence_classes eq (s1, o1) (s2, o2) =
  let c = blank () in
  header c "EQUIVALENCE SPECIFICATION" "Equivalence Class Creation and Deletion Screen";
  let col schema obj x =
    Canvas.text c x 5
      (Printf.sprintf "(%s.%s)" (name_str (Schema.name schema)) (name_str obj));
    Canvas.text c x 7 "Attribute Name";
    Canvas.text c (x + 22) 7 "Eq_class #";
    match find_attrs schema obj with
    | Some (_, attrs) ->
        List.iteri
          (fun i a ->
            Canvas.text c x (9 + i)
              (Printf.sprintf "%d> %s" (i + 1) (name_str a.Attribute.name));
            let qa = Qname.Attr.make (Schema.qname schema obj) a.Attribute.name in
            let num =
              match Integrate.Equivalence.class_number qa eq with
              | n -> string_of_int n
              | exception Not_found -> "-"
            in
            Canvas.text c (x + 24) (9 + i) num)
          attrs
    | None -> Canvas.text c x 9 "(unknown object)"
  in
  col s1 o1 6;
  col s2 o2 44;
  Canvas.vline c 40 4 (rows - 7) '|';
  menu_line c "(S)croll (A)dd or (D)elete from equiv. class (E)xit => ";
  c

(* ------------------------------------------------------------------ *)

let assertion_menu_lines =
  [
    "1 - OB_CL_name_1 'equals' OB_CL_name_2";
    "2 - OB_CL_name_1 'contained in' OB_CL_name_2";
    "3 - OB_CL_name_1 'contains' OB_CL_name_2";
    "4 - OB_CL_name_1 and OB_CL_name_2 are disjoint but integratable";
    "5 - OB_CL_name_1 and OB_CL_name_2 may be integratable";
    "0 - OB_CL_name_1 and OB_CL_name_2 are disjoint & non-integratable";
  ]

let assertion_collection ?(offset = 0) ~answered ranked =
  let c = blank () in
  header c "ASSERTION SPECIFICATION" "Assertion Collection For Object Pairs Screen";
  Canvas.text c 4 5 "Schema_Name1.Obj_Class1";
  Canvas.text c 30 5 "Schema_Name2.Obj_Class2";
  Canvas.text c 56 5 "ATTRIBUTE";
  Canvas.text c 68 5 "ENTER";
  Canvas.text c 56 6 "RATIO";
  Canvas.text c 68 6 "ASSERTION";
  let find_answer left right =
    List.find_map
      (fun (a, b, assertion) ->
        if Qname.equal a left && Qname.equal b right then Some assertion
        else if Qname.equal a right && Qname.equal b left then
          Some (Integrate.Assertion.converse assertion)
        else None)
      answered
  in
  List.iteri
    (fun i rk ->
      let y = 8 + i in
      if y < 15 then begin
        Canvas.text c 1 y (Printf.sprintf "%2d" (offset + i + 1));
        Canvas.text c 4 y (Qname.to_string rk.Integrate.Similarity.left);
        Canvas.text c 30 y (Qname.to_string rk.Integrate.Similarity.right);
        Canvas.text c 56 y (Printf.sprintf "%.4f" rk.Integrate.Similarity.ratio);
        match find_answer rk.Integrate.Similarity.left rk.Integrate.Similarity.right with
        | Some assertion ->
            Canvas.text c 68 y
              (Printf.sprintf "=>%d" (Integrate.Assertion.code assertion))
        | None -> Canvas.text c 68 y "=>"
      end)
    (List.filteri (fun i _ -> i >= offset) ranked);
  List.iteri (fun i l -> Canvas.text c 4 (15 + i) l) assertion_menu_lines;
  menu_line c "Enter assertion number for each pair, or (E)xit => ";
  c

let conflict_resolution (conflict : Integrate.Assertions.conflict) =
  let c = blank () in
  header c "ASSERTION SPECIFICATION" "Assertion Conflict Resolution Screen";
  Canvas.text c 4 5 "SCHEMA_NAME1.OBJ_CLASS1";
  Canvas.text c 30 5 "SCHEMA_NAME2.OBJ_CLASS2";
  Canvas.text c 55 5 "CURRENT";
  Canvas.text c 65 5 "NEW";
  Canvas.text c 55 6 "ASSERTION";
  Canvas.text c 65 6 "ASSERTION";
  let current_code =
    match
      Integrate.Rel.to_assertion ~integrable:false conflict.Integrate.Assertions.current
    with
    | Some a -> string_of_int (Integrate.Assertion.code a)
    | None -> Integrate.Rel.to_string conflict.Integrate.Assertions.current
  in
  Canvas.text c 4 8 (Qname.to_string conflict.Integrate.Assertions.left);
  Canvas.text c 30 8 (Qname.to_string conflict.Integrate.Assertions.right);
  Canvas.text c 55 8 current_code;
  Canvas.text c 60 8 "<derived>(CONFLICT)";
  (match conflict.Integrate.Assertions.attempted with
  | Some a ->
      Canvas.text c 4 9 (Qname.to_string conflict.Integrate.Assertions.left);
      Canvas.text c 30 9 (Qname.to_string conflict.Integrate.Assertions.right);
      Canvas.text c 55 9 (string_of_int (Integrate.Assertion.code a));
      Canvas.text c 60 9 "<new>(CONFLICT)"
  | None -> ());
  List.iteri
    (fun i (l, r, a) ->
      let y = 11 + i in
      if y < 15 then begin
        Canvas.text c 4 y (Qname.to_string l);
        Canvas.text c 30 y (Qname.to_string r);
        Canvas.text c 55 y (string_of_int (Integrate.Assertion.code a))
      end)
    conflict.Integrate.Assertions.basis;
  List.iteri (fun i l -> Canvas.text c 4 (15 + i) l) assertion_menu_lines;
  menu_line c "Change one of the conflicting assertions => ";
  c

(* ------------------------------------------------------------------ *)

let result_header c subtitle = header c "INTEGRATED SCHEMA" subtitle

let object_class_screen (r : Integrate.Result.t) =
  let c = blank () in
  result_header c "Object Class Screen";
  let schema = r.Integrate.Result.schema in
  let entities = Schema.entities schema
  and categories = Schema.categories schema
  and relationships = Schema.relationships schema in
  Canvas.text c 6 5 (Printf.sprintf "Entities(%d)" (List.length entities));
  Canvas.text c 30 5 (Printf.sprintf "Categories(%d)" (List.length categories));
  Canvas.text c 54 5
    (Printf.sprintf "Relationships(%d)" (List.length relationships));
  List.iteri
    (fun i oc -> Canvas.text c 6 (7 + i) (name_str oc.Object_class.name))
    entities;
  List.iteri
    (fun i oc -> Canvas.text c 30 (7 + i) (name_str oc.Object_class.name))
    categories;
  List.iteri
    (fun i rel -> Canvas.text c 54 (7 + i) (name_str rel.Relationship.name))
    relationships;
  Canvas.text c 4 (rows - 4)
    "To view details, enter a choice and an object class name:";
  menu_line c "<A>ttributes, <C>ategories, <E>ntities, <R>elationships, e<x>it => ";
  c

let kind_letter_of schema n =
  match Schema.find_structure n schema with
  | Some (Schema.Obj oc) -> Object_class.kind_letter oc
  | Some (Schema.Rel _) -> 'r'
  | None -> '?'

let entity_screen (r : Integrate.Result.t) entity =
  let c = blank () in
  result_header c "Entity Screen";
  Canvas.text_center c 4 ("< " ^ name_str entity ^ " >");
  let schema = r.Integrate.Result.schema in
  let children = Schema.children schema entity in
  Canvas.text c 6 6 (Printf.sprintf "Child Object(%d) (type)" (List.length children));
  List.iteri
    (fun i k ->
      Canvas.text c 6 (8 + i)
        (Printf.sprintf "%s (%c)" (name_str k) (kind_letter_of schema k)))
    children;
  menu_line c "(E)quivalent objects, (q)uit => ";
  c

let category_screen (r : Integrate.Result.t) cat =
  let c = blank () in
  result_header c "Category Screen";
  Canvas.text_center c 4 ("< " ^ name_str cat ^ " >");
  let schema = r.Integrate.Result.schema in
  let parents =
    match Schema.find_object cat schema with
    | Some oc -> Object_class.parents oc
    | None -> []
  in
  let children = Schema.children schema cat in
  Canvas.text c 6 6 (Printf.sprintf "Parent Object(%d) (type)" (List.length parents));
  Canvas.text c 44 6 (Printf.sprintf "Child Object(%d) (type)" (List.length children));
  List.iteri
    (fun i p ->
      Canvas.text c 6 (8 + i)
        (Printf.sprintf "%s (%c)" (name_str p) (kind_letter_of schema p)))
    parents;
  List.iteri
    (fun i k ->
      Canvas.text c 44 (8 + i)
        (Printf.sprintf "%s (%c)" (name_str k) (kind_letter_of schema k)))
    children;
  menu_line c "(E)quivalent objects, (q)uit => ";
  c

let relationship_screen (r : Integrate.Result.t) rel =
  let c = blank () in
  result_header c "Relationship Screen";
  Canvas.text_center c 4 ("< " ^ name_str rel ^ " >");
  let schema = r.Integrate.Result.schema in
  (match Schema.find_relationship rel schema with
  | Some rr ->
      Canvas.text c 6 6 "Participant";
      Canvas.text c 40 6 "Cardinality";
      List.iteri
        (fun i p ->
          Canvas.text c 6 (8 + i) (name_str p.Relationship.obj);
          Canvas.text c 40 (8 + i) (Cardinality.to_string p.Relationship.card))
        rr.Relationship.participants
  | None -> Canvas.text c 6 6 "(unknown relationship)");
  menu_line c "(E)quivalent objects, (P)articipating objects, (q)uit => ";
  c

let attribute_screen (r : Integrate.Result.t) cls =
  let c = blank () in
  result_header c "Attribute Screen";
  let schema = r.Integrate.Result.schema in
  let kind =
    match Schema.find_structure cls schema with
    | Some (Schema.Obj oc) ->
        if Object_class.is_entity oc then "entity" else "category"
    | Some (Schema.Rel _) -> "relationship"
    | None -> "?"
  in
  Canvas.text_center c 4 (Printf.sprintf "< %s : %s >" (name_str cls) kind);
  let attrs =
    match Schema.find_structure cls schema with
    | Some (Schema.Obj _) -> (
        try Schema.all_attributes schema cls with Not_found -> [])
    | Some (Schema.Rel rr) -> rr.Relationship.attributes
    | None -> []
  in
  Canvas.text c 6 6 "Attribute Name";
  Canvas.text c 32 6 "Domain";
  Canvas.text c 48 6 "Key";
  Canvas.text c 58 6 "# components";
  List.iteri
    (fun i a ->
      let y = 8 + i in
      Canvas.text c 6 y (name_str a.Attribute.name);
      Canvas.text c 32 y (Domain.to_string a.Attribute.domain);
      Canvas.text c 48 y (if a.Attribute.key then "YES" else "NO");
      let comps =
        Integrate.Result.components_of_attribute r cls a.Attribute.name
      in
      (* inherited attributes live on an ancestor; find their home *)
      let comps =
        if comps <> [] then comps
        else
          List.fold_left
            (fun acc anc ->
              if acc <> [] then acc
              else Integrate.Result.components_of_attribute r anc a.Attribute.name)
            [] (Schema.ancestors schema cls)
      in
      Canvas.text c 58 y (string_of_int (List.length comps)))
    attrs;
  menu_line c "Enter attribute name for components, or (q)uit => ";
  c

let component_attribute_screen ~schemas (r : Integrate.Result.t) cls attr ~index =
  let c = blank () in
  result_header c "Component Attribute Screen";
  let kind =
    match Schema.find_structure cls r.Integrate.Result.schema with
    | Some (Schema.Obj oc) ->
        if Object_class.is_entity oc then "entity" else "category"
    | Some (Schema.Rel _) -> "relationship"
    | None -> "?"
  in
  Canvas.text_center c 4 (Printf.sprintf "< %s : %s >" (name_str cls) kind);
  Canvas.text_center c 5 (Printf.sprintf "< %s >" (name_str attr));
  let comps =
    let own = Integrate.Result.components_of_attribute r cls attr in
    if own <> [] then own
    else
      List.fold_left
        (fun acc anc ->
          if acc <> [] then acc
          else Integrate.Result.components_of_attribute r anc attr)
        []
        (Schema.ancestors r.Integrate.Result.schema cls)
  in
  (match List.nth_opt comps index with
  | Some qa ->
      let owner = qa.Qname.Attr.owner in
      let original =
        List.find_opt
          (fun s -> Name.equal (Schema.name s) owner.Qname.schema)
          schemas
      in
      let domain, key =
        match
          Option.bind original (fun s ->
              match Schema.find_structure owner.Qname.obj s with
              | Some (Schema.Obj oc) ->
                  Option.map
                    (fun a -> (a.Attribute.domain, a.Attribute.key))
                    (Attribute.find qa.Qname.Attr.attr oc.Object_class.attributes)
              | Some (Schema.Rel rr) ->
                  Option.map
                    (fun a -> (a.Attribute.domain, a.Attribute.key))
                    (Attribute.find qa.Qname.Attr.attr rr.Relationship.attributes)
              | None -> None)
        with
        | Some (d, k) -> (Domain.to_string d, if k then "YES" else "NO")
        | None -> ("?", "?")
      in
      let orig_type =
        match original with
        | Some s -> Char.uppercase_ascii (kind_letter_of s owner.Qname.obj)
        | None -> '?'
      in
      let lines =
        [
          ("Attribute Name", name_str qa.Qname.Attr.attr);
          ("Domain", domain);
          ("Key", key);
          ("original Object Name", name_str owner.Qname.obj);
          ("original type", String.make 1 orig_type);
          ("original Schema Name", name_str owner.Qname.schema);
        ]
      in
      List.iteri
        (fun i (label, v) ->
          Canvas.text c 8 (7 + (i * 2)) label;
          Canvas.text c 32 (7 + (i * 2)) (": " ^ v))
        lines
  | None -> Canvas.text c 8 7 "(no such component)");
  menu_line c "Press any key to continue, or (q)uit => ";
  c

let equivalent_screen (r : Integrate.Result.t) cls =
  let c = blank () in
  result_header c "Equivalent Screen";
  Canvas.text_center c 4 ("< " ^ name_str cls ^ " >");
  Canvas.text c 6 6 "Component structures merged by 'equals':";
  (match Integrate.Result.origin_of r cls with
  | Some (Integrate.Result.Equivalent qs) ->
      List.iteri
        (fun i q -> Canvas.text c 8 (8 + i) (Qname.to_string q))
        qs
  | Some (Integrate.Result.Original q) ->
      Canvas.text c 8 8 (Qname.to_string q ^ " (not merged)")
  | Some (Integrate.Result.Derived children) ->
      Canvas.text c 8 8
        ("derived over "
        ^ String.concat ", " (List.map name_str children))
  | None -> Canvas.text c 8 8 "(unknown structure)");
  menu_line c "(q)uit => ";
  c

let participating_objects_screen (r : Integrate.Result.t) rel =
  let c = blank () in
  result_header c "Participating Objects In Relationship Screen";
  Canvas.text_center c 4 ("< " ^ name_str rel ^ " >");
  let schema = r.Integrate.Result.schema in
  (match Schema.find_relationship rel schema with
  | Some rr ->
      Canvas.text c 6 6 "Object";
      Canvas.text c 32 6 "Type";
      Canvas.text c 44 6 "Cardinality";
      List.iteri
        (fun i p ->
          let y = 8 + i in
          Canvas.text c 6 y (name_str p.Relationship.obj);
          Canvas.put c 32 y (kind_letter_of schema p.Relationship.obj);
          Canvas.text c 44 y (Cardinality.to_string p.Relationship.card))
        rr.Relationship.participants
  | None -> Canvas.text c 6 6 "(unknown relationship)");
  menu_line c "(q)uit => ";
  c
