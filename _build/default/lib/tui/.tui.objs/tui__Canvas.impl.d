lib/tui/canvas.ml: Bytes Int List String
