lib/tui/flow.ml: Buffer List Printf
