lib/tui/screens.mli: Canvas Ecr Integrate
