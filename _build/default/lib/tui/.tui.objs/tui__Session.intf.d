lib/tui/session.mli: Buffer Ecr Integrate
