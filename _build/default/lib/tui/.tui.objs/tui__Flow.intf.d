lib/tui/flow.mli:
