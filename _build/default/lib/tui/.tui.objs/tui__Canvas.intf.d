lib/tui/canvas.mli:
