lib/tui/screens.ml: Attribute Canvas Cardinality Char Domain Ecr Integrate List Name Object_class Option Printf Qname Relationship Schema String
