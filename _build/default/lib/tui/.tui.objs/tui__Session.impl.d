lib/tui/session.ml: Attribute Buffer Canvas Cardinality Ecr Flow Fun Integrate List Name Object_class Option Printf Qname Relationship Schema Screens Stdlib String
