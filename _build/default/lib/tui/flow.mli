(** The control-flow graph of the result-viewing screens (Figure 6).

    "Figure 6 shows control flow of the screens in this phase, where the
    annotation on an arc between two screens shows the menu choice made
    in the screen at the tail of the arc to invoke the screen at the
    head."  The interactive driver follows exactly this graph; the tests
    check it is connected and deterministic per (screen, choice). *)

type screen =
  | Object_class
  | Entity
  | Category
  | Relationship
  | Attribute
  | Component_attribute
  | Equivalent
  | Participating

val all_screens : screen list

val arcs : (screen * string * screen) list
(** (tail, menu choice, head). *)

val successors : screen -> (string * screen) list

val next : screen -> string -> screen option
(** The screen a choice leads to; [None] for an invalid choice. *)

val reachable_from : screen -> screen list
(** Screens reachable by following arcs. *)

val screen_name : screen -> string
val to_dot : unit -> string
