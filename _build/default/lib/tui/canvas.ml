type t = { w : int; h : int; cells : Bytes.t }

let create ?(fill = ' ') w h =
  if w <= 0 || h <= 0 then invalid_arg "Canvas.create: non-positive size";
  { w; h; cells = Bytes.make (w * h) fill }

let width c = c.w
let height c = c.h

let put c x y ch =
  if x >= 0 && x < c.w && y >= 0 && y < c.h then
    Bytes.set c.cells ((y * c.w) + x) ch

let text c x y s = String.iteri (fun i ch -> put c (x + i) y ch) s

let text_center c y s =
  let x = Int.max 0 ((c.w - String.length s) / 2) in
  text c x y s

let text_right c x y s = text c (x - String.length s) y s

let hline c x y len ch =
  for i = 0 to len - 1 do
    put c (x + i) y ch
  done

let vline c x y len ch =
  for i = 0 to len - 1 do
    put c x (y + i) ch
  done

let box c x y w h =
  if w >= 2 && h >= 2 then begin
    hline c (x + 1) y (w - 2) '-';
    hline c (x + 1) (y + h - 1) (w - 2) '-';
    vline c x (y + 1) (h - 2) '|';
    vline c (x + w - 1) (y + 1) (h - 2) '|';
    put c x y '+';
    put c (x + w - 1) y '+';
    put c x (y + h - 1) '+';
    put c (x + w - 1) (y + h - 1) '+'
  end

let frame c = box c 0 0 c.w c.h

let row c y =
  let line = Bytes.sub_string c.cells (y * c.w) c.w in
  (* trim trailing blanks *)
  let stop = ref (String.length line) in
  while !stop > 0 && line.[!stop - 1] = ' ' do
    decr stop
  done;
  String.sub line 0 !stop

let to_lines c = List.init c.h (row c)
let to_string c = String.concat "\n" (to_lines c) ^ "\n"
