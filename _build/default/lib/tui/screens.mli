(** The tool's screens, as pure renderers.

    One function per screen of the paper (Screens 1 through 12b, plus
    the Category Information Collection Screen the text describes but
    does not picture).  Each takes plain data and returns an 80x24
    {!Canvas.t}; the interactive driver ({!Session}) and the golden
    tests call the same functions, so what the tests pin is exactly
    what a user sees. *)

val columns : int
val rows : int

(** {1 Screen 1 — main menu} *)

val main_menu : unit -> Canvas.t

(** {1 Schema collection (Screens 2-5)} *)

val schema_name_collection : names:string list -> Canvas.t

val structure_information : ?offset:int -> Ecr.Schema.t -> Canvas.t
(** One row per structure: name, type letter (e/c/r), attribute count.
    [offset] implements the screens' (S)croll option: the first [offset]
    structures are skipped. *)

val category_information : Ecr.Schema.t -> Ecr.Name.t -> Canvas.t
(** Parents of one category. *)

val relationship_information : Ecr.Schema.t -> Ecr.Name.t -> Canvas.t
(** Participants of one relationship set with cardinalities. *)

val attribute_information :
  ?offset:int -> Ecr.Schema.t -> Ecr.Name.t -> Canvas.t
(** Attribute rows (name, domain, key) of one structure. *)

(** {1 Equivalence specification (Screens 6-7)} *)

val object_selection : Ecr.Schema.t -> Ecr.Schema.t -> Canvas.t
(** Entity/Category Name Selection: the two schemas' object classes
    side by side. *)

val equivalence_classes :
  Integrate.Equivalence.t ->
  Ecr.Schema.t * Ecr.Name.t ->
  Ecr.Schema.t * Ecr.Name.t ->
  Canvas.t
(** Equivalence Class Creation and Deletion: the two chosen objects'
    attributes with their Eq_class numbers. *)

(** {1 Assertion specification (Screens 8-9)} *)

val assertion_collection :
  ?offset:int ->
  answered:(Ecr.Qname.t * Ecr.Qname.t * Integrate.Assertion.t) list ->
  Integrate.Similarity.ranked list ->
  Canvas.t
(** Ranked pairs with attribute ratios; pairs already answered show
    their assertion code after [=>]. *)

val conflict_resolution : Integrate.Assertions.conflict -> Canvas.t
(** The derived assertion, the conflicting new one, and the basis rows
    (Screen 9). *)

(** {1 Integration results (Screens 10-12b)} *)

val object_class_screen : Integrate.Result.t -> Canvas.t

val entity_screen : Integrate.Result.t -> Ecr.Name.t -> Canvas.t
(** Children object classes of an entity. *)

val category_screen : Integrate.Result.t -> Ecr.Name.t -> Canvas.t
(** Parents and children of a category (Screen 11). *)

val relationship_screen : Integrate.Result.t -> Ecr.Name.t -> Canvas.t

val attribute_screen : Integrate.Result.t -> Ecr.Name.t -> Canvas.t
(** All attributes of one object class (inherited included). *)

val component_attribute_screen :
  schemas:Ecr.Schema.t list ->
  Integrate.Result.t ->
  Ecr.Name.t ->
  Ecr.Name.t ->
  index:int ->
  Canvas.t
(** Screen 12a/12b: the [index]-th component of a derived attribute,
    with its original object, type and schema. *)

val equivalent_screen : Integrate.Result.t -> Ecr.Name.t -> Canvas.t
(** The component structures an [E_] structure merges. *)

val participating_objects_screen :
  Integrate.Result.t -> Ecr.Name.t -> Canvas.t
(** Entities and categories tied to a relationship set. *)
