type screen =
  | Object_class
  | Entity
  | Category
  | Relationship
  | Attribute
  | Component_attribute
  | Equivalent
  | Participating

let all_screens =
  [
    Object_class;
    Entity;
    Category;
    Relationship;
    Attribute;
    Component_attribute;
    Equivalent;
    Participating;
  ]

(* Figure 6: the Object Class Screen fans out to the Entity, Category,
   Relationship and Attribute screens; the Attribute Screen leads to the
   Component Attribute Screen (per derived-attribute component); the
   Entity/Category/Relationship screens lead to the Equivalent Screen;
   the Relationship Screen additionally leads to the Participating
   Objects screen; [q] returns towards the Object Class Screen. *)
let arcs =
  [
    (Object_class, "E", Entity);
    (Object_class, "C", Category);
    (Object_class, "R", Relationship);
    (Object_class, "A", Attribute);
    (Entity, "e", Equivalent);
    (Category, "e", Equivalent);
    (Relationship, "e", Equivalent);
    (Relationship, "p", Participating);
    (Attribute, "name", Component_attribute);
    (Component_attribute, "any", Component_attribute);
    (Component_attribute, "q", Attribute);
    (Attribute, "q", Object_class);
    (Entity, "q", Object_class);
    (Category, "q", Object_class);
    (Relationship, "q", Object_class);
    (Equivalent, "q", Object_class);
    (Participating, "q", Relationship);
  ]

let successors s =
  List.filter_map (fun (t, l, h) -> if t = s then Some (l, h) else None) arcs

let next s choice =
  List.find_map (fun (t, l, h) -> if t = s && l = choice then Some h else None) arcs

let reachable_from start =
  let rec walk seen = function
    | [] -> seen
    | s :: queue ->
        if List.mem s seen then walk seen queue
        else
          let succ = List.map snd (successors s) in
          walk (s :: seen) (queue @ succ)
  in
  List.rev (walk [] [ start ])

let screen_name = function
  | Object_class -> "Object Class Screen"
  | Entity -> "Entity Screen"
  | Category -> "Category Screen"
  | Relationship -> "Relationship Screen"
  | Attribute -> "Attribute Screen"
  | Component_attribute -> "Component Attribute Screen"
  | Equivalent -> "Equivalent Screen"
  | Participating -> "Participating Objects In Relationship Screen"

let to_dot () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph screen_flow {\n  rankdir=LR;\n";
  List.iter
    (fun (t, l, h) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"];\n" (screen_name t)
           (screen_name h) l))
    arcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
