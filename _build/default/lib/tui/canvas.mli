(** A fixed-size character canvas — our terminal-independent equivalent
    of the original tool's curses windows.

    The original ran on an Apollo under UNIX curses; we render each
    screen into a plain character grid and hand the resulting text to
    whatever is attached (a real terminal, a golden-file test, the
    benchmark harness).  All twelve screens of the paper render into an
    80x24 canvas. *)

type t

val create : ?fill:char -> int -> int -> t
(** [create w h] — a blank canvas of width [w], height [h]. *)

val width : t -> int
val height : t -> int

val put : t -> int -> int -> char -> unit
(** [put c x y ch] — no-op outside the canvas. *)

val text : t -> int -> int -> string -> unit
(** Writes a string starting at (x, y); clipped at the right edge. *)

val text_center : t -> int -> string -> unit
(** Centres a string on row [y]. *)

val text_right : t -> int -> int -> string -> unit
(** [text_right c x y s] ends the string at column [x] (exclusive). *)

val hline : t -> int -> int -> int -> char -> unit
(** [hline c x y len ch]. *)

val vline : t -> int -> int -> int -> char -> unit

val box : t -> int -> int -> int -> int -> unit
(** [box c x y w h] draws a border using [+], [-], [|]. *)

val frame : t -> unit
(** Border around the whole canvas. *)

val to_string : t -> string
(** Rows joined with ["\n"], trailing blanks trimmed per row (so golden
    files are stable), with a final newline. *)

val to_lines : t -> string list
