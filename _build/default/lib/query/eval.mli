(** Query evaluation over an instance store.

    Rows are attribute-name-to-value maps.  For joined queries, target
    columns are prefixed with the target class name
    ([Department_Name]), so a row never has colliding keys.  Answers
    are multisets: {!same_answers} compares them order-insensitively
    but multiplicity-sensitively. *)

type row = Instance.Value.t Ecr.Name.Map.t

exception Error of string
(** Unknown class/relationship/attribute, or a join whose relationship
    does not connect the two classes. *)

val run : Ast.t -> Instance.Store.t -> row list
(** Evaluates against the store's schema.  The from-class extent
    includes members of its descendants (ECR category semantics).
    @raise Error on ill-typed queries. *)

val row : (string * Instance.Value.t) list -> row

val row_to_string : row -> string
val pp_row : Format.formatter -> row -> unit

val same_answers : row list -> row list -> bool
(** Multiset equality of answers. *)

val project_rows : Ecr.Name.t list -> row list -> row list
(** Keeps only the given columns in each row. *)

val rename_columns : (Ecr.Name.t -> Ecr.Name.t) -> row list -> row list
