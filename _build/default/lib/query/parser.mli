(** A concrete syntax for queries and updates.

    Grammar (case-insensitive keywords):
    {v
    query  ::= "select" ("*" | attrs) "from" IDENT
               [ "via" IDENT "to" IDENT [ "select" attrs ]
                 [ "target" "where" pred ] ]
               [ "where" pred ]
    update ::= "insert" "into" IDENT "{" assigns "}"
             | "delete" "from" IDENT [ "where" pred ]
             | "update" IDENT "set" assigns [ "where" pred ]
    attrs  ::= IDENT ("," IDENT)*
    assigns::= IDENT "=" value ("," IDENT "=" value)*
    pred   ::= pred "or" pred | pred "and" pred | "not" pred
             | "(" pred ")" | IDENT cmp value
    cmp    ::= "=" | "<>" | "<" | "<=" | ">" | ">="
    value  ::= NUMBER | STRING | "true" | "false" | "null"
    v}

    Strings are single- or double-quoted; a string shaped like
    [YYYY-MM-DD] becomes a date value.  Numbers with a point become
    reals.

    Examples:
    {v
    select Name, GPA from Student where GPA >= 3.5
    select Name from Student via Majors to Department select Name
      target where Name = "CS"
    delete from Student where Name = 'Ben'
    update Student set GPA = 4.0 where Name = 'Ann'
    v} *)

exception Error of string
(** Syntax error, with position information in the message. *)

val query_of_string : string -> Ast.t
(** @raise Error on malformed input. *)

val update_of_string : string -> Update.t
(** @raise Error on malformed input. *)

val value_of_string : string -> Instance.Value.t
(** Parses one literal value. *)
