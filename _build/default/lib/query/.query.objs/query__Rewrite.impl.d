lib/query/rewrite.ml: Ast Attribute Ecr Eval Hashtbl Instance Integrate List Name Object_class Option Printf Qname Schema
