lib/query/update.mli: Ast Ecr Format Instance Integrate
