lib/query/parser.mli: Ast Instance Update
