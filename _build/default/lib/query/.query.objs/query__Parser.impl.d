lib/query/parser.ml: Ast Ecr Instance List Name Printf String Update
