lib/query/rewrite.mli: Ast Ecr Eval Instance Integrate
