lib/query/eval.ml: Ast Attribute Ecr Format Instance List Name Option Printf Relationship Schema String
