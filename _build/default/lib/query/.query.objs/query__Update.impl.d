lib/query/update.ml: Ast Attribute Ecr Format Instance Integrate List Name Option Printf Qname Rewrite Schema String
