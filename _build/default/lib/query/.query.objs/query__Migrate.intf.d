lib/query/migrate.mli: Ecr Instance Integrate
