lib/query/ast.ml: Ecr Format Instance List Name Option String
