lib/query/eval.mli: Ast Ecr Format Instance
