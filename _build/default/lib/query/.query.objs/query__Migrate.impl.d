lib/query/migrate.ml: Attribute Ecr Hashtbl Instance Integrate List Name Qname Relationship Schema String
