lib/query/ast.mli: Ecr Format Instance
