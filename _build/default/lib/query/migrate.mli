(** Instance migration along integration mappings.

    Populates an instance of the integrated schema from instances of the
    component schemas, so translated queries can be verified end to end:

    - every component entity is inserted into the integrated class its
      component class maps to (category placements follow the component
      store's own placements);
    - entities from classes merged by "equals" are deduplicated on the
      integrated class's key attributes: when an incoming entity agrees
      on all non-null keys with an existing one, the two are fused
      (extra class memberships and attribute values are added to the
      existing entity);
    - attribute values are stored under their integrated names;
    - relationship instances follow their relationship set's mapping,
      with participants translated through the entity correspondence;
      exact duplicate links (same participants and values) collapse. *)

type report = {
  entities_in : int;  (** component entities processed *)
  entities_out : int;  (** integrated entities created *)
  fused : int;  (** entities merged with an existing one *)
  links_in : int;
  links_out : int;
}

val run :
  Integrate.Mapping.t ->
  integrated:Ecr.Schema.t ->
  (Ecr.Schema.t * Instance.Store.t) list ->
  Instance.Store.t * report
(** @raise Instance.Store.Violation when a component store references
    structures absent from its schema (i.e. the component store is
    corrupt). *)
