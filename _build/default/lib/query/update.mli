(** Update operations ("transactions") and their translation.

    The paper's Phase 4: "User queries {e and transactions} specified
    against each view are mapped to the logical schema."  This module
    provides the update half: insert/delete/modify operations over one
    object class, evaluable against an instance store and translatable
    through the generated mappings exactly like queries.

    View-update semantics are the pragmatic ones of the era: a view
    update is translated and applied to the integrated (logical)
    database; entities inserted through a view land in the integrated
    class the view class maps to, deletions remove the matching entities
    from the integrated extent (and thereby from every other view that
    sees them — the classic view-update side effect, surfaced rather
    than hidden). *)

type t =
  | Insert of Ecr.Name.t * Instance.Store.tuple
  | Delete of Ecr.Name.t * Ast.pred option
  | Modify of Ecr.Name.t * Ast.pred option * (Ecr.Name.t * Instance.Value.t) list

val insert : string -> (string * Instance.Value.t) list -> t
val delete : ?where:Ast.pred -> string -> t
val modify : ?where:Ast.pred -> string -> (string * Instance.Value.t) list -> t

exception Error of string

val apply : t -> Instance.Store.t -> Instance.Store.t * int
(** Applies the operation; returns the store and the number of entities
    affected.  @raise Error on unknown classes or attributes. *)

val to_integrated :
  Integrate.Mapping.t -> view:Ecr.Schema.t -> t -> t
(** Translates a view update into an update against the integrated
    schema (class and attribute names rewritten through the mapping).
    @raise Rewrite.Unmapped when the view class has no mapping entry. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
