open Ecr
module V = Instance.Value

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Tokens.                                                             *)

type token =
  | Ident of string
  | Number of string
  | Str of string
  | Cmp of Ast.cmp
  | Star
  | Comma
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Assign  (** '=' doubles as comparison; disambiguated by context *)
  | Eof

let keywordish s = String.lowercase_ascii s

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let emit t = out := t :: !out in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_ident c = is_ident_start c || (c >= '0' && c <= '9') in
  let is_digit c = (c >= '0' && c <= '9') || c = '.' || c = '-' in
  let rec scan i =
    if i >= n then emit Eof
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | ',' ->
          emit Comma;
          scan (i + 1)
      | '*' ->
          emit Star;
          scan (i + 1)
      | '(' ->
          emit Lparen;
          scan (i + 1)
      | ')' ->
          emit Rparen;
          scan (i + 1)
      | '{' ->
          emit Lbrace;
          scan (i + 1)
      | '}' ->
          emit Rbrace;
          scan (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '>' ->
          emit (Cmp Ast.Ne);
          scan (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' ->
          emit (Cmp Ast.Le);
          scan (i + 2)
      | '>' when i + 1 < n && src.[i + 1] = '=' ->
          emit (Cmp Ast.Ge);
          scan (i + 2)
      | '<' ->
          emit (Cmp Ast.Lt);
          scan (i + 1)
      | '>' ->
          emit (Cmp Ast.Gt);
          scan (i + 1)
      | '=' ->
          emit Assign;
          scan (i + 1)
      | ('\'' | '"') as quote ->
          let rec stop j =
            if j >= n then error "unterminated string at offset %d" i
            else if src.[j] = quote then j
            else stop (j + 1)
          in
          let j = stop (i + 1) in
          emit (Str (String.sub src (i + 1) (j - i - 1)));
          scan (j + 1)
      | c when c = '-' || (c >= '0' && c <= '9') ->
          let rec stop j = if j < n && is_digit src.[j] then stop (j + 1) else j in
          let j = stop (i + 1) in
          emit (Number (String.sub src i (j - i)));
          scan j
      | c when is_ident_start c ->
          let rec stop j = if j < n && is_ident src.[j] then stop (j + 1) else j in
          let j = stop i in
          emit (Ident (String.sub src i (j - i)));
          scan j
      | c -> error "illegal character %C at offset %d" c i
  in
  scan 0;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Values.                                                             *)

let date_of_string s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some y, Some m, Some d
        when String.length s = 10 && m >= 1 && m <= 12 && d >= 1 && d <= 31 ->
          Some (V.date y m d)
      | _ -> None)
  | _ -> None

let value_of_token = function
  | Number s -> (
      if String.contains s '.' then
        match float_of_string_opt s with
        | Some f -> V.real f
        | None -> error "bad number %s" s
      else
        match int_of_string_opt s with
        | Some i -> V.int i
        | None -> error "bad number %s" s)
  | Str s -> ( match date_of_string s with Some d -> d | None -> V.str s)
  | Ident s when keywordish s = "true" -> V.bool true
  | Ident s when keywordish s = "false" -> V.bool false
  | Ident s when keywordish s = "null" -> V.Null
  | _ -> error "expected a value"

let value_of_string s =
  match tokenize s with
  | [ t; Eof ] -> value_of_token t
  | _ -> error "expected exactly one value"

(* ------------------------------------------------------------------ *)
(* Recursive descent.                                                  *)

type state = { mutable rest : token list }

let peek st = match st.rest with [] -> Eof | t :: _ -> t
let advance st = match st.rest with [] -> () | _ :: r -> st.rest <- r

let ident st =
  match peek st with
  | Ident s ->
      advance st;
      s
  | _ -> error "expected an identifier"

let keyword st kw =
  match peek st with
  | Ident s when keywordish s = kw -> advance st
  | _ -> error "expected '%s'" kw

let at_keyword st kw =
  match peek st with Ident s -> keywordish s = kw | _ -> false

let name st =
  match Name.of_string_opt (ident st) with
  | Some n -> n
  | None -> error "invalid identifier"

(* pred ::= disjunction *)
let rec pred st = disjunction st

and disjunction st =
  let left = conjunction st in
  if at_keyword st "or" then begin
    advance st;
    Ast.Or (left, disjunction st)
  end
  else left

and conjunction st =
  let left = negation st in
  if at_keyword st "and" then begin
    advance st;
    Ast.And (left, conjunction st)
  end
  else left

and negation st =
  if at_keyword st "not" then begin
    advance st;
    Ast.Not (negation st)
  end
  else atom st

and atom st =
  match peek st with
  | Lparen ->
      advance st;
      let p = pred st in
      (match peek st with
      | Rparen -> advance st
      | _ -> error "expected ')'");
      p
  | Ident _ ->
      let attr = name st in
      let cmp =
        match peek st with
        | Cmp c ->
            advance st;
            c
        | Assign ->
            advance st;
            Ast.Eq
        | _ -> error "expected a comparison operator"
      in
      let v = value_of_token (peek st) in
      advance st;
      Ast.Atom (attr, cmp, v)
  | _ -> error "expected a predicate"

let attr_list st =
  let rec more acc =
    let a = name st in
    if peek st = Comma then begin
      advance st;
      more (a :: acc)
    end
    else List.rev (a :: acc)
  in
  more []

let assignments st =
  let rec more acc =
    let a = name st in
    (match peek st with
    | Assign -> advance st
    | _ -> error "expected '=' in an assignment");
    let v = value_of_token (peek st) in
    advance st;
    if peek st = Comma then begin
      advance st;
      more ((a, v) :: acc)
    end
    else List.rev ((a, v) :: acc)
  in
  more []

let query_of_string src =
  let st = { rest = tokenize src } in
  keyword st "select";
  let select =
    match peek st with
    | Star ->
        advance st;
        []
    | _ -> attr_list st
  in
  keyword st "from";
  let from_class = name st in
  let via =
    if at_keyword st "via" then begin
      advance st;
      let rel = name st in
      let rel_select =
        if at_keyword st "with" then begin
          advance st;
          attr_list st
        end
        else []
      in
      keyword st "to";
      let target = name st in
      let target_select =
        if at_keyword st "select" then begin
          advance st;
          match peek st with
          | Star ->
              advance st;
              []
          | _ -> attr_list st
        end
        else []
      in
      let target_where =
        if at_keyword st "target" then begin
          advance st;
          keyword st "where";
          Some (pred st)
        end
        else None
      in
      Some { Ast.rel; rel_select; target; target_where; target_select }
    end
    else None
  in
  let where =
    if at_keyword st "where" then begin
      advance st;
      Some (pred st)
    end
    else None
  in
  (match peek st with
  | Eof -> ()
  | _ -> error "trailing input after the query");
  { Ast.from_class; where; select; via }

let update_of_string src =
  let st = { rest = tokenize src } in
  match peek st with
  | Ident s when keywordish s = "insert" ->
      advance st;
      keyword st "into";
      let cls = name st in
      (match peek st with
      | Lbrace -> advance st
      | _ -> error "expected '{'");
      let assigns = assignments st in
      (match peek st with
      | Rbrace -> advance st
      | _ -> error "expected '}'");
      Update.Insert
        ( cls,
          List.fold_left
            (fun m (k, v) -> Name.Map.add k v m)
            Name.Map.empty assigns )
  | Ident s when keywordish s = "delete" ->
      advance st;
      keyword st "from";
      let cls = name st in
      let where =
        if at_keyword st "where" then begin
          advance st;
          Some (pred st)
        end
        else None
      in
      Update.Delete (cls, where)
  | Ident s when keywordish s = "update" ->
      advance st;
      let cls = name st in
      keyword st "set";
      let assigns = assignments st in
      let where =
        if at_keyword st "where" then begin
          advance st;
          Some (pred st)
        end
        else None
      in
      Update.Modify (cls, where, assigns)
  | _ -> error "expected insert, delete or update"
