open Ecr
module S = Instance.Store
module V = Instance.Value

type t =
  | Insert of Name.t * S.tuple
  | Delete of Name.t * Ast.pred option
  | Modify of Name.t * Ast.pred option * (Name.t * V.t) list

let insert cls bindings = Insert (Name.v cls, S.tuple bindings)
let delete ?where cls = Delete (Name.v cls, where)

let modify ?where cls assignments =
  Modify
    (Name.v cls, where, List.map (fun (k, v) -> (Name.v k, v)) assignments)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let check_class schema cls =
  if Schema.find_object cls schema = None then
    error "unknown object class %s" (Name.to_string cls)

let check_attrs schema cls names =
  let attrs = Attribute.names (Schema.all_attributes schema cls) in
  List.iter
    (fun n ->
      if not (List.exists (Name.equal n) attrs) then
        error "class %s has no attribute %s" (Name.to_string cls)
          (Name.to_string n))
    names

let matching store cls pred =
  let passes oid =
    match pred with
    | None -> true
    | Some p ->
        let lookup a = S.value oid a store in
        let rec eval = function
          | Ast.Atom (a, cmp, v) -> (
              let actual = lookup a in
              match (actual, cmp) with
              | V.Null, Ast.Eq -> V.equal v V.Null
              | V.Null, _ -> false
              | _ ->
                  let c = V.compare actual v in
                  (match cmp with
                  | Ast.Eq -> c = 0
                  | Ast.Ne -> c <> 0
                  | Ast.Lt -> c < 0
                  | Ast.Le -> c <= 0
                  | Ast.Gt -> c > 0
                  | Ast.Ge -> c >= 0))
          | Ast.And (p, q) -> eval p && eval q
          | Ast.Or (p, q) -> eval p || eval q
          | Ast.Not p -> not (eval p)
          | Ast.Const b -> b
        in
        eval p
  in
  S.Oid.Set.elements (S.extent cls store) |> List.filter passes

let apply op store =
  let schema = S.schema store in
  match op with
  | Insert (cls, tuple) ->
      check_class schema cls;
      check_attrs schema cls (List.map fst (Name.Map.bindings tuple));
      let store, _ = S.insert cls tuple store in
      (store, 1)
  | Delete (cls, pred) ->
      check_class schema cls;
      Option.iter (fun p -> check_attrs schema cls (Ast.attrs_of_pred p)) pred;
      let victims = matching store cls pred in
      ( List.fold_left (fun st oid -> S.remove_entity oid st) store victims,
        List.length victims )
  | Modify (cls, pred, assignments) ->
      check_class schema cls;
      Option.iter (fun p -> check_attrs schema cls (Ast.attrs_of_pred p)) pred;
      check_attrs schema cls (List.map fst assignments);
      let targets = matching store cls pred in
      ( List.fold_left
          (fun st oid ->
            List.fold_left
              (fun st (a, v) -> S.set_value oid a v st)
              st assignments)
          store targets,
        List.length targets )

let to_integrated mapping ~view op =
  let rename cls = Rewrite.rename_for_view mapping view cls in
  let target cls =
    match
      Integrate.Mapping.object_target (Qname.make (Schema.name view) cls) mapping
    with
    | Some t -> t
    | None ->
        raise
          (Rewrite.Unmapped
             ("object class " ^ Name.to_string cls ^ " has no mapping entry"))
  in
  match op with
  | Insert (cls, tuple) ->
      let rename = rename cls in
      Insert
        ( target cls,
          Name.Map.fold
            (fun a v acc -> Name.Map.add (rename a) v acc)
            tuple Name.Map.empty )
  | Delete (cls, pred) ->
      Delete (target cls, Option.map (Ast.rename_pred (rename cls)) pred)
  | Modify (cls, pred, assignments) ->
      let rename = rename cls in
      Modify
        ( target cls,
          Option.map (Ast.rename_pred rename) pred,
          List.map (fun (a, v) -> (rename a, v)) assignments )

let pp fmt = function
  | Insert (cls, tuple) ->
      Format.fprintf fmt "insert into %a {%s}" Name.pp cls
        (String.concat ", "
           (List.map
              (fun (k, v) -> Name.to_string k ^ "=" ^ V.to_string v)
              (Name.Map.bindings tuple)))
  | Delete (cls, pred) ->
      Format.fprintf fmt "delete from %a" Name.pp cls;
      Option.iter (fun p -> Format.fprintf fmt " where %a" Ast.pp_pred p) pred
  | Modify (cls, pred, assignments) ->
      Format.fprintf fmt "update %a set %s" Name.pp cls
        (String.concat ", "
           (List.map
              (fun (k, v) -> Name.to_string k ^ "=" ^ V.to_string v)
              assignments));
      Option.iter (fun p -> Format.fprintf fmt " where %a" Ast.pp_pred p) pred

let to_string op = Format.asprintf "%a" pp op
