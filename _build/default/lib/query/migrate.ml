open Ecr
module Store = Instance.Store
module Value = Instance.Value

type report = {
  entities_in : int;
  entities_out : int;
  fused : int;
  links_in : int;
  links_out : int;
}

(* Rename a component tuple into integrated attribute names. *)
let rename_tuple (entry : Integrate.Mapping.entry) tuple =
  Name.Map.fold
    (fun attr v acc ->
      match Name.Map.find_opt attr entry.Integrate.Mapping.attrs with
      | Some t -> Name.Map.add t.Integrate.Mapping.as_attr v acc
      | None -> Name.Map.add attr v acc)
    tuple Name.Map.empty

(* Fusion keys: every key attribute visible on the insertion class with
   a non-null value on the tuple.  Two incoming entities fuse when they
   agree on any one of these, scoped by the root of the insertion
   class's IS-A chain so unrelated classes can never cross-fuse. *)
let key_pairs integrated insertion tuple =
  let root =
    match Schema.ancestors integrated insertion with
    | [] -> insertion
    | ancestors -> List.nth ancestors (List.length ancestors - 1)
  in
  Attribute.keys (Schema.all_attributes integrated insertion)
  |> Attribute.names
  |> List.filter_map (fun k ->
         match Name.Map.find_opt k tuple with
         | Some v when not (Value.equal v Value.Null) ->
             Some
               (Name.to_string root ^ "|" ^ Name.to_string k ^ "="
              ^ Value.to_string v)
         | _ -> None)

let run mapping ~integrated components =
  let store = ref (Store.create integrated) in
  let entities_in = ref 0
  and fused = ref 0
  and links_in = ref 0
  and links_out = ref 0 in
  (* (component schema, old oid) -> new oid *)
  let correspondence = Hashtbl.create 256 in
  (* (integrated class, key signature) -> oid, for fusion *)
  let by_key = Hashtbl.create 256 in

  (* ---- entities -------------------------------------------------- *)
  List.iter
    (fun (schema, comp_store) ->
      let sname = Schema.name schema in
      List.iter
        (fun old_oid ->
          incr entities_in;
          let classes = Store.classes_of old_oid comp_store in
          let entries =
            List.filter_map
              (fun c ->
                Integrate.Mapping.object_entry (Qname.make sname c) mapping)
              classes
          in
          match entries with
          | [] -> ()
          | first :: _ ->
              let tuple =
                List.fold_left
                  (fun acc (e : Integrate.Mapping.entry) ->
                    Name.Map.union
                      (fun _ v _ -> Some v)
                      acc
                      (rename_tuple e (Store.tuple_of old_oid comp_store)))
                  Name.Map.empty entries
              in
              let target_classes =
                List.map (fun (e : Integrate.Mapping.entry) -> e.Integrate.Mapping.target) entries
                |> List.sort_uniq Name.compare
              in
              (* the insertion class: the most specific target (one that
                 no other target is a descendant of) *)
              let insertion =
                match
                  List.filter
                    (fun t ->
                      not
                        (List.exists
                           (fun t' ->
                             (not (Name.equal t t'))
                             && Schema.is_ancestor integrated ~ancestor:t t')
                           target_classes))
                    target_classes
                with
                | t :: _ -> t
                | [] -> first.Integrate.Mapping.target
              in
              let pairs = key_pairs integrated insertion tuple in
              let existing =
                List.find_map (Hashtbl.find_opt by_key) pairs
              in
              let new_oid =
                match existing with
                | Some oid ->
                    incr fused;
                    (* add class memberships and missing values *)
                    List.iter
                      (fun t -> store := Store.classify oid t !store)
                      target_classes;
                    Name.Map.iter
                      (fun a v ->
                        if
                          Value.equal (Store.value oid a !store) Value.Null
                          && not (Value.equal v Value.Null)
                        then store := Store.set_value oid a v !store)
                      tuple;
                    List.iter (fun p -> Hashtbl.replace by_key p oid) pairs;
                    oid
                | None ->
                    let st, oid = Store.insert insertion tuple !store in
                    store := st;
                    List.iter
                      (fun t ->
                        if not (Name.equal t insertion) then
                          store := Store.classify oid t !store)
                      target_classes;
                    List.iter (fun p -> Hashtbl.replace by_key p oid) pairs;
                    oid
              in
              Hashtbl.replace correspondence
                (Name.to_string sname, Store.Oid.to_int old_oid)
                new_oid)
        (Store.entities comp_store))
    components;

  (* ---- relationship instances ------------------------------------ *)
  let seen_links = Hashtbl.create 256 in
  List.iter
    (fun (schema, comp_store) ->
      let sname = Schema.name schema in
      List.iter
        (fun r ->
          let rel = r.Relationship.name in
          match
            Integrate.Mapping.relationship_entry (Qname.make sname rel) mapping
          with
          | None -> ()
          | Some entry ->
              List.iter
                (fun { Store.participants; values } ->
                  incr links_in;
                  let translated =
                    List.filter_map
                      (fun oid ->
                        Hashtbl.find_opt correspondence
                          (Name.to_string sname, Store.Oid.to_int oid))
                      participants
                  in
                  if List.length translated = List.length participants then begin
                    let values' = rename_tuple entry values in
                    let key =
                      Name.to_string entry.Integrate.Mapping.target
                      ^ "|"
                      ^ String.concat ","
                          (List.map
                             (fun o -> string_of_int (Store.Oid.to_int o))
                             translated)
                      ^ "|"
                      ^ String.concat ","
                          (List.map
                             (fun (k, v) ->
                               Name.to_string k ^ "=" ^ Value.to_string v)
                             (Name.Map.bindings values'))
                    in
                    if not (Hashtbl.mem seen_links key) then begin
                      Hashtbl.add seen_links key ();
                      incr links_out;
                      store :=
                        Store.relate entry.Integrate.Mapping.target translated
                          values' !store
                    end
                  end)
                (Store.links rel comp_store))
        (Schema.relationships schema))
    components;

  ( !store,
    {
      entities_in = !entities_in;
      entities_out = List.length (Store.entities !store);
      fused = !fused;
      links_in = !links_in;
      links_out = !links_out;
    } )
