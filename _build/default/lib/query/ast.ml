open Ecr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Atom of Name.t * cmp * Instance.Value.t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Const of bool

type join = {
  rel : Name.t;
  rel_select : Name.t list;
  target : Name.t;
  target_where : pred option;
  target_select : Name.t list;
}

type t = {
  from_class : Name.t;
  where : pred option;
  select : Name.t list;
  via : join option;
}

let atom attr cmp v = Atom (Name.v attr, cmp, v)
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let not_ p = Not p

let join ?where ?(target_select = []) ?(rel_select = []) rel target =
  {
    rel = Name.v rel;
    rel_select = List.map Name.v rel_select;
    target = Name.v target;
    target_where = where;
    target_select = List.map Name.v target_select;
  }

let query ?where ?(select = []) ?via from_class =
  { from_class = Name.v from_class; where; select = List.map Name.v select; via }

let rec rename_pred f = function
  | Atom (a, cmp, v) -> Atom (f a, cmp, v)
  | And (p, q) -> And (rename_pred f p, rename_pred f q)
  | Or (p, q) -> Or (rename_pred f p, rename_pred f q)
  | Not p -> Not (rename_pred f p)
  | Const b -> Const b

let attrs_of_pred p =
  let rec walk acc = function
    | Atom (a, _, _) -> a :: acc
    | And (p, q) | Or (p, q) -> walk (walk acc p) q
    | Not p -> walk acc p
    | Const _ -> acc
  in
  List.sort_uniq Name.compare (walk [] p)

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_pred fmt = function
  | Atom (a, cmp, v) ->
      Format.fprintf fmt "%a %s %a" Name.pp a (cmp_to_string cmp)
        Instance.Value.pp v
  | And (p, q) -> Format.fprintf fmt "(%a and %a)" pp_pred p pp_pred q
  | Or (p, q) -> Format.fprintf fmt "(%a or %a)" pp_pred p pp_pred q
  | Not p -> Format.fprintf fmt "(not %a)" pp_pred p
  | Const b -> Format.pp_print_bool fmt b

let pp fmt q =
  Format.fprintf fmt "select %s from %a"
    (match q.select with
    | [] -> "*"
    | names -> String.concat ", " (List.map Name.to_string names))
    Name.pp q.from_class;
  (match q.via with
  | Some j ->
      Format.fprintf fmt " via %a" Name.pp j.rel;
      (match j.rel_select with
      | [] -> ()
      | names ->
          Format.fprintf fmt " with %s"
            (String.concat ", " (List.map Name.to_string names)));
      Format.fprintf fmt " to %a" Name.pp j.target;
      (match j.target_select with
      | [] -> ()
      | names ->
          Format.fprintf fmt " select %s"
            (String.concat ", " (List.map Name.to_string names)));
      Option.iter (fun p -> Format.fprintf fmt " target_where %a" pp_pred p) j.target_where
  | None -> ());
  match q.where with
  | Some p -> Format.fprintf fmt " where %a" pp_pred p
  | None -> ()

let to_string q = Format.asprintf "%a" pp q
