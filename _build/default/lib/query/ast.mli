(** A small query language over ECR schemas.

    Queries are select/project over one object class, optionally joined
    through one relationship set to a second class — enough to express
    the "user queries and transactions specified against each view" that
    the generated mappings must translate, and to verify translation
    end-to-end on instances.

    Example (against the paper's sc1):
    {[
      let q =
        Ast.(
          query "Student"
            ~where:(atom "GPA" Ge (Instance.Value.real 3.5))
            ~select:[ "Name" ]
            ~via:
              (join "Majors" "Department" ~target_select:[ "Name" ]))
    ]} *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Atom of Ecr.Name.t * cmp * Instance.Value.t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Const of bool
      (** used by query rewriting when a predicate attribute has no
          counterpart on the other side (its value there is always
          [Null], and [Null] comparisons are false) *)

type join = {
  rel : Ecr.Name.t;  (** relationship set to traverse *)
  rel_select : Ecr.Name.t list;
      (** projected attributes of the relationship set itself; output
          columns are prefixed with the relationship name *)
  target : Ecr.Name.t;  (** object class on the other side *)
  target_where : pred option;
  target_select : Ecr.Name.t list;
      (** projected target attributes; their output columns are
          prefixed with the target class name *)
}

type t = {
  from_class : Ecr.Name.t;
  where : pred option;
  select : Ecr.Name.t list;  (** [] projects every attribute *)
  via : join option;
}

val atom : string -> cmp -> Instance.Value.t -> pred
val ( &&& ) : pred -> pred -> pred
val ( ||| ) : pred -> pred -> pred
val not_ : pred -> pred

val join :
  ?where:pred ->
  ?target_select:string list ->
  ?rel_select:string list ->
  string ->
  string ->
  join
(** [join rel target] traverses [rel] to [target]. *)

val query : ?where:pred -> ?select:string list -> ?via:join -> string -> t

val rename_pred : (Ecr.Name.t -> Ecr.Name.t) -> pred -> pred
(** Applies an attribute renaming throughout a predicate. *)

val attrs_of_pred : pred -> Ecr.Name.t list
(** Attributes a predicate mentions (with duplicates removed). *)

val cmp_to_string : cmp -> string
val pp_pred : Format.formatter -> pred -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
