type change =
  | Added of Schema.structure
  | Removed of Schema.structure
  | Changed of Schema.structure * Schema.structure

let structure_name = function
  | Schema.Obj oc -> oc.Object_class.name
  | Schema.Rel r -> r.Relationship.name

let structure_equal a b =
  match (a, b) with
  | Schema.Obj x, Schema.Obj y -> Object_class.equal x y
  | Schema.Rel x, Schema.Rel y -> Relationship.equal x y
  | (Schema.Obj _ | Schema.Rel _), _ -> false

let diff old_schema new_schema =
  let olds = Schema.structures old_schema
  and news = Schema.structures new_schema in
  let removed_or_changed =
    List.filter_map
      (fun s ->
        match Schema.find_structure (structure_name s) new_schema with
        | None -> Some (Removed s)
        | Some s' when structure_equal s s' -> None
        | Some s' -> Some (Changed (s, s')))
      olds
  in
  let added =
    List.filter_map
      (fun s ->
        if Schema.mem (structure_name s) old_schema then None
        else Some (Added s))
      news
  in
  removed_or_changed @ added

let is_empty = function [] -> true | _ :: _ -> false

let pp_structure fmt = function
  | Schema.Obj oc -> Object_class.pp fmt oc
  | Schema.Rel r -> Relationship.pp fmt r

let pp_change fmt = function
  | Added s -> Format.fprintf fmt "+ %a" pp_structure s
  | Removed s -> Format.fprintf fmt "- %a" pp_structure s
  | Changed (before, after) ->
      Format.fprintf fmt "~ %a => %a" pp_structure before pp_structure after

let pp fmt changes =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_cut fmt ())
    pp_change fmt changes
