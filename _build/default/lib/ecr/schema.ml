type structure = Obj of Object_class.t | Rel of Relationship.t

type t = {
  name : Name.t;
  (* Insertion order matters to the screens, so we keep ordered lists and
     rebuild the by-name index on every edit.  Schemas are small (tens to
     a few hundred structures); clarity wins over an incremental index. *)
  objects : Object_class.t list;
  relationships : Relationship.t list;
  index : structure Name.Map.t;
}

let structure_name = function
  | Obj oc -> oc.Object_class.name
  | Rel r -> r.Relationship.name

let build_index objects relationships =
  let add index s =
    let n = structure_name s in
    if Name.Map.mem n index then
      invalid_arg ("Schema: duplicate structure " ^ Name.to_string n)
    else Name.Map.add n s index
  in
  let index =
    List.fold_left (fun acc oc -> add acc (Obj oc)) Name.Map.empty objects
  in
  List.fold_left (fun acc r -> add acc (Rel r)) index relationships

let empty name = { name; objects = []; relationships = []; index = Name.Map.empty }

let make name ~objects ~relationships =
  { name; objects; relationships; index = build_index objects relationships }

let add_object oc s =
  let objects = s.objects @ [ oc ] in
  { s with objects; index = build_index objects s.relationships }

let add_relationship r s =
  let relationships = s.relationships @ [ r ] in
  { s with relationships; index = build_index s.objects relationships }

let remove_structure n s =
  let objects =
    List.filter (fun oc -> not (Name.equal oc.Object_class.name n)) s.objects
  and relationships =
    List.filter (fun r -> not (Name.equal r.Relationship.name n)) s.relationships
  in
  { s with objects; relationships; index = build_index objects relationships }

let replace_object oc s =
  let n = oc.Object_class.name in
  if Name.Map.mem n s.index then
    let objects =
      List.map
        (fun o -> if Name.equal o.Object_class.name n then oc else o)
        s.objects
    in
    { s with objects; index = build_index objects s.relationships }
  else add_object oc s

let replace_relationship r s =
  let n = r.Relationship.name in
  if Name.Map.mem n s.index then
    let relationships =
      List.map
        (fun x -> if Name.equal x.Relationship.name n then r else x)
        s.relationships
    in
    { s with relationships; index = build_index s.objects relationships }
  else add_relationship r s

let rename name s = { s with name }
let name s = s.name
let objects s = s.objects
let relationships s = s.relationships

let structures s =
  List.map (fun oc -> Obj oc) s.objects
  @ List.map (fun r -> Rel r) s.relationships

let entities s = List.filter Object_class.is_entity s.objects
let categories s = List.filter Object_class.is_category s.objects

let find_structure n s = Name.Map.find_opt n s.index

let find_object n s =
  match find_structure n s with Some (Obj oc) -> Some oc | _ -> None

let find_relationship n s =
  match find_structure n s with Some (Rel r) -> Some r | _ -> None

let mem n s = Name.Map.mem n s.index
let size s = List.length s.objects + List.length s.relationships

let ancestors s obj =
  (* Breadth-first over parent edges, nearest first; cycles (which are
     validation errors) are cut by the [queued] set. *)
  let rec walk queued acc = function
    | [] -> List.rev acc
    | n :: queue ->
        let parents =
          match find_object n s with
          | Some oc -> Object_class.parents oc
          | None -> []
        in
        let fresh = List.filter (fun p -> not (Name.Set.mem p queued)) parents in
        let queued = List.fold_left (fun set p -> Name.Set.add p set) queued fresh in
        walk queued (List.rev_append fresh acc) (queue @ fresh)
  in
  walk (Name.Set.singleton obj) [] [ obj ]

let all_attributes s obj =
  match find_object obj s with
  | None -> raise Not_found
  | Some oc ->
      let chain = oc :: List.filter_map (fun n -> find_object n s) (ancestors s obj) in
      let add (seen, acc) a =
        if Name.Set.mem a.Attribute.name seen then (seen, acc)
        else (Name.Set.add a.Attribute.name seen, a :: acc)
      in
      let _, acc =
        List.fold_left
          (fun state c -> List.fold_left add state c.Object_class.attributes)
          (Name.Set.empty, []) chain
      in
      List.rev acc

let children s obj =
  List.filter_map
    (fun oc ->
      if List.exists (Name.equal obj) (Object_class.parents oc) then
        Some oc.Object_class.name
      else None)
    s.objects

let descendants s obj =
  let rec walk queued = function
    | [] -> []
    | n :: queue ->
        let kids =
          List.filter (fun k -> not (Name.Set.mem k queued)) (children s n)
        in
        let queued = List.fold_left (fun set k -> Name.Set.add k set) queued kids in
        kids @ walk queued (queue @ kids)
  in
  walk (Name.Set.singleton obj) [ obj ]

let is_ancestor s ~ancestor obj = List.exists (Name.equal ancestor) (ancestors s obj)

let relationships_of s obj =
  List.filter (Relationship.participates obj) s.relationships

let roots s = List.filter (fun oc -> Object_class.parents oc = []) s.objects

type error =
  | Duplicate_structure of Name.t
  | Duplicate_attribute of Name.t * Name.t
  | Unknown_parent of Name.t * Name.t
  | Parent_is_relationship of Name.t * Name.t
  | Category_without_parent of Name.t
  | Cyclic_categories of Name.t list
  | Unknown_participant of Name.t * Name.t
  | Participant_is_relationship of Name.t * Name.t
  | Relationship_arity of Name.t * int
  | Ambiguous_roles of Name.t
  | Attribute_shadows_inherited of Name.t * Name.t

let error_to_string = function
  | Duplicate_structure n -> "duplicate structure " ^ Name.to_string n
  | Duplicate_attribute (s, a) ->
      Printf.sprintf "duplicate attribute %s.%s" (Name.to_string s)
        (Name.to_string a)
  | Unknown_parent (c, p) ->
      Printf.sprintf "category %s references unknown parent %s"
        (Name.to_string c) (Name.to_string p)
  | Parent_is_relationship (c, p) ->
      Printf.sprintf "category %s uses relationship %s as parent"
        (Name.to_string c) (Name.to_string p)
  | Category_without_parent c ->
      "category " ^ Name.to_string c ^ " has no parent"
  | Cyclic_categories cycle ->
      "cyclic categories: "
      ^ String.concat " -> " (List.map Name.to_string cycle)
  | Unknown_participant (r, o) ->
      Printf.sprintf "relationship %s references unknown class %s"
        (Name.to_string r) (Name.to_string o)
  | Participant_is_relationship (r, o) ->
      Printf.sprintf "relationship %s uses relationship %s as participant"
        (Name.to_string r) (Name.to_string o)
  | Relationship_arity (r, n) ->
      Printf.sprintf "relationship %s has arity %d (needs >= 2)"
        (Name.to_string r) n
  | Ambiguous_roles r ->
      Printf.sprintf
        "relationship %s repeats a participant without distinct roles"
        (Name.to_string r)
  | Attribute_shadows_inherited (c, a) ->
      Printf.sprintf
        "category %s redeclares inherited attribute %s with an incompatible \
         domain"
        (Name.to_string c) (Name.to_string a)

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

let check_attributes errs owner attrs =
  match Attribute.well_formed attrs with
  | Ok () -> errs
  | Error _ ->
      (* Report every duplicated name precisely. *)
      let rec dups seen acc = function
        | [] -> List.rev acc
        | a :: rest ->
            let n = a.Attribute.name in
            if Name.Set.mem n seen then dups seen (Duplicate_attribute (owner, n) :: acc) rest
            else dups (Name.Set.add n seen) acc rest
      in
      errs @ dups Name.Set.empty [] attrs

let find_category_cycle s =
  (* Depth-first search over parent edges looking for a back edge. *)
  let rec visit path visiting visited n =
    if Name.Set.mem n visited then (visited, None)
    else if Name.Set.mem n visiting then
      let cycle =
        let rec take = function
          | [] -> []
          | x :: rest -> if Name.equal x n then [ x ] else x :: take rest
        in
        (visited, Some (List.rev (take path)))
      in
      cycle
    else
      let parents =
        match find_object n s with
        | Some oc -> Object_class.parents oc
        | None -> []
      in
      let rec loop visited = function
        | [] -> (Name.Set.add n visited, None)
        | p :: rest -> (
            match visit (p :: path) (Name.Set.add n visiting) visited p with
            | (_, Some _) as found -> found
            | visited, None -> loop visited rest)
      in
      loop visited parents
  in
  let rec scan visited = function
    | [] -> None
    | oc :: rest -> (
        let n = oc.Object_class.name in
        match visit [ n ] Name.Set.empty visited n with
        | _, Some cycle -> Some cycle
        | visited, None -> scan visited rest)
  in
  scan Name.Set.empty s.objects

let shadowing_errors s oc =
  let name = oc.Object_class.name in
  match oc.Object_class.kind with
  | Object_class.Entity_set -> []
  | Object_class.Category _ ->
      let inherited =
        List.concat_map
          (fun p ->
            match find_object p s with
            | Some _ -> ( try all_attributes s p with Not_found -> [])
            | None -> [])
          (Object_class.parents oc)
      in
      List.filter_map
        (fun a ->
          match Attribute.find a.Attribute.name inherited with
          | Some inh
            when not (Domain.compatible inh.Attribute.domain a.Attribute.domain)
            ->
              Some (Attribute_shadows_inherited (name, a.Attribute.name))
          | _ -> None)
        oc.Object_class.attributes

let validate s =
  let errs = [] in
  (* Attribute uniqueness inside every structure. *)
  let errs =
    List.fold_left
      (fun errs oc ->
        check_attributes errs oc.Object_class.name oc.Object_class.attributes)
      errs s.objects
  in
  let errs =
    List.fold_left
      (fun errs r ->
        check_attributes errs r.Relationship.name r.Relationship.attributes)
      errs s.relationships
  in
  (* Category parents. *)
  let errs =
    List.fold_left
      (fun errs oc ->
        let n = oc.Object_class.name in
        match oc.Object_class.kind with
        | Object_class.Entity_set -> errs
        | Object_class.Category [] -> errs @ [ Category_without_parent n ]
        | Object_class.Category parents ->
            errs
            @ List.filter_map
                (fun p ->
                  match find_structure p s with
                  | None -> Some (Unknown_parent (n, p))
                  | Some (Rel _) -> Some (Parent_is_relationship (n, p))
                  | Some (Obj _) -> None)
                parents)
      errs s.objects
  in
  let errs =
    match find_category_cycle s with
    | Some cycle -> errs @ [ Cyclic_categories cycle ]
    | None -> errs
  in
  (* Shadowing with incompatible domains. *)
  let errs = errs @ List.concat_map (shadowing_errors s) s.objects in
  (* Relationships. *)
  let errs =
    List.fold_left
      (fun errs r ->
        let n = r.Relationship.name in
        let errs =
          if Relationship.arity r >= 2 then errs
          else errs @ [ Relationship_arity (n, Relationship.arity r) ]
        in
        let errs =
          errs
          @ List.filter_map
              (fun p ->
                let o = p.Relationship.obj in
                match find_structure o s with
                | None -> Some (Unknown_participant (n, o))
                | Some (Rel _) -> Some (Participant_is_relationship (n, o))
                | Some (Obj _) -> None)
              r.Relationship.participants
        in
        (* Repeated participant without distinguishing roles? *)
        let by_obj =
          List.fold_left
            (fun m p ->
              let k = p.Relationship.obj in
              let cur = Option.value ~default:[] (Name.Map.find_opt k m) in
              Name.Map.add k (p.Relationship.role :: cur) m)
            Name.Map.empty r.Relationship.participants
        in
        let ambiguous =
          Name.Map.exists
            (fun _ roles ->
              List.length roles > 1
              &&
              let named = List.filter_map Fun.id roles in
              List.length (List.sort_uniq Name.compare named)
              <> List.length roles)
            by_obj
        in
        if ambiguous then errs @ [ Ambiguous_roles n ] else errs)
      errs s.relationships
  in
  errs

let equal a b =
  Name.equal a.name b.name
  && List.length a.objects = List.length b.objects
  && List.for_all2 Object_class.equal a.objects b.objects
  && List.length a.relationships = List.length b.relationships
  && List.for_all2 Relationship.equal a.relationships b.relationships

let pp fmt s =
  Format.fprintf fmt "@[<v 2>schema %a {" Name.pp s.name;
  List.iter (fun oc -> Format.fprintf fmt "@,%a" Object_class.pp oc) s.objects;
  List.iter (fun r -> Format.fprintf fmt "@,%a" Relationship.pp r) s.relationships;
  Format.fprintf fmt "@]@,}"

let qname s obj = Qname.make s.name obj
let attr_qname s obj attr = Qname.Attr.make (qname s obj) attr
