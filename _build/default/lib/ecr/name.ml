type t = string

exception Invalid of string

let is_leading_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_body_char c = is_leading_char c || (c >= '0' && c <= '9')

let is_valid s =
  String.length s > 0
  && is_leading_char s.[0]
  && (let ok = ref true in
      String.iter (fun c -> if not (is_body_char c) then ok := false) s;
      !ok)

let of_string s = if is_valid s then s else raise (Invalid s)
let of_string_opt s = if is_valid s then Some s else None
let to_string s = s
let v = of_string
let equal = String.equal
let compare = String.compare
let equal_ci a b = String.equal (String.lowercase_ascii a) (String.lowercase_ascii b)
let concat ?(sep = "_") a b = a ^ sep ^ b

let abbreviate n name =
  if String.length name <= n then name else String.sub name 0 n

let pp = Format.pp_print_string

module Set = Set.Make (String)
module Map = Map.Make (String)
