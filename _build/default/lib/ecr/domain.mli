(** Attribute domains.

    The paper's Attribute Information Collection Screen (Screen 5) records
    a domain for every attribute ([char], [real], ...).  Domains matter to
    integration in two ways: attributes declared equivalent should have
    compatible domains, and the matching heuristics of section 4 use
    domain compatibility as one resemblance signal. *)

type t =
  | Char_string  (** the paper's [char] — uninterpreted text *)
  | Integer
  | Real
  | Boolean
  | Date
  | Enum of string list  (** a closed value set, e.g. support types *)
  | Named of Name.t
      (** a reference to an application-defined domain, opaque to the
          tool; two [Named] domains are compatible iff equal *)

val equal : t -> t -> bool
val compare : t -> t -> int

val compatible : t -> t -> bool
(** [compatible a b] is [true] when values of [a] and [b] can be merged
    into one integrated attribute without conversion: equal domains,
    [Integer]/[Real] (widening), or enums where one value set contains
    the other. *)

val join : t -> t -> t option
(** [join a b] is the smallest domain containing both, when
    {!compatible}: e.g. [join Integer Real = Some Real] and the join of
    two enums is the union of their value sets. *)

val of_string : string -> t
(** Parses the DDL spelling, e.g. ["char"], ["int"], ["real"], ["bool"],
    ["date"], ["enum(a,b,c)"]; anything else becomes [Named]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
