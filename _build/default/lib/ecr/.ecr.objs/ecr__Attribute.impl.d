lib/ecr/attribute.ml: Bool Domain Format List Name
