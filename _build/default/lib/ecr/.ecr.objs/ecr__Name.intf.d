lib/ecr/name.mli: Format Map Set
