lib/ecr/relationship.ml: Attribute Cardinality Format List Name Option Stdlib
