lib/ecr/qname.mli: Format Map Name Set Stdlib
