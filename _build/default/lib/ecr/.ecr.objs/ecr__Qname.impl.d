lib/ecr/qname.ml: Format Name Stdlib String
