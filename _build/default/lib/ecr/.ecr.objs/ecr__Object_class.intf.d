lib/ecr/object_class.mli: Attribute Format Name
