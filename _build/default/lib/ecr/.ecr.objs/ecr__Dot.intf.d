lib/ecr/dot.mli: Schema
