lib/ecr/cardinality.ml: Format Int Printf String
