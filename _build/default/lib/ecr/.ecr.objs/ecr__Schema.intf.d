lib/ecr/schema.mli: Attribute Format Name Object_class Qname Relationship
