lib/ecr/cardinality.mli: Format
