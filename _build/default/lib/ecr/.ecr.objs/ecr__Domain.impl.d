lib/ecr/domain.ml: Format Int List Name Stdlib String
