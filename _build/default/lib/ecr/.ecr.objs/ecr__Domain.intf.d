lib/ecr/domain.mli: Format Name
