lib/ecr/relationship.mli: Attribute Cardinality Format Name
