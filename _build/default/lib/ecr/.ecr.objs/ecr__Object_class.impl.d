lib/ecr/object_class.ml: Attribute Format List Name Stdlib String
