lib/ecr/attribute.mli: Domain Format Name
