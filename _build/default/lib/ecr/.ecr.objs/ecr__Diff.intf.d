lib/ecr/diff.mli: Format Schema
