lib/ecr/dot.ml: Attribute Buffer Cardinality Domain Fun List Name Object_class Printf Relationship Schema String
