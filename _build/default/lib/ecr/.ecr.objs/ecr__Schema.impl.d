lib/ecr/schema.ml: Attribute Domain Format Fun List Name Object_class Option Printf Qname Relationship String
