lib/ecr/diff.ml: Format List Object_class Relationship Schema
