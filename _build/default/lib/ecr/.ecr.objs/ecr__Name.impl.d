lib/ecr/name.ml: Format Map Set String
