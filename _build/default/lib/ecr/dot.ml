let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attr_lines attrs =
  List.map
    (fun a ->
      Printf.sprintf "%s%s : %s"
        (if a.Attribute.key then "*" else "")
        (Name.to_string a.Attribute.name)
        (Domain.to_string a.Attribute.domain))
    attrs

let node_label name attrs =
  let header = Name.to_string name in
  match attr_lines attrs with
  | [] -> header
  | lines -> header ^ "\\n" ^ String.concat "\\n" lines

let to_dot ?(rankdir = "TB") s =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %s {\n" (escape (Name.to_string (Schema.name s)));
  out "  rankdir=%s;\n  node [fontsize=10];\n" rankdir;
  List.iter
    (fun oc ->
      let n = Name.to_string oc.Object_class.name in
      let shape, style =
        if Object_class.is_entity oc then ("box", "solid")
        else ("box", "rounded")
      in
      out "  \"%s\" [shape=%s, style=%s, label=\"%s\"];\n" (escape n) shape
        style
        (escape (node_label oc.Object_class.name oc.Object_class.attributes)))
    (Schema.objects s);
  List.iter
    (fun oc ->
      let n = Name.to_string oc.Object_class.name in
      List.iter
        (fun p ->
          out "  \"%s\" -> \"%s\" [label=\"isa\", arrowhead=empty];\n"
            (escape n)
            (escape (Name.to_string p)))
        (Object_class.parents oc))
    (Schema.objects s);
  List.iter
    (fun r ->
      let n = Name.to_string r.Relationship.name in
      out "  \"%s\" [shape=diamond, label=\"%s\"];\n" (escape n)
        (escape (node_label r.Relationship.name r.Relationship.attributes));
      List.iter
        (fun p ->
          let label =
            (match p.Relationship.role with
            | Some role -> Name.to_string role ^ " "
            | None -> "")
            ^ Cardinality.to_string p.Relationship.card
          in
          out "  \"%s\" -> \"%s\" [dir=none, label=\"%s\"];\n" (escape n)
            (escape (Name.to_string p.Relationship.obj))
            (escape label))
        r.Relationship.participants)
    (Schema.relationships s);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot s))
