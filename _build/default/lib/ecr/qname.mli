(** Schema-qualified names.

    During integration, structures from different component schemas are
    compared and recorded side by side, so a bare structure name is
    ambiguous.  A {!t} pairs the owning schema's name with the structure
    name — the [sc1.Student] notation of the paper's screens.  An
    {!attr} additionally names an attribute of that structure —
    [sc1.Student.Name]. *)

type t = {
  schema : Name.t;  (** the component schema the structure belongs to *)
  obj : Name.t;  (** the structure (object class or relationship set) *)
}

val make : Name.t -> Name.t -> t
(** [make schema obj] is [{schema; obj}]. *)

val v : string -> string -> t
(** [v schema obj] validates and pairs two raw strings. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** [to_string q] is ["schema.obj"], the notation used on every screen. *)

val of_string : string -> t
(** Parses ["schema.obj"].  @raise Name.Invalid on malformed input. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** An attribute of a qualified structure, e.g. [sc1.Student.Name]. *)
module Attr : sig
  type qname = t

  type t = { owner : qname; attr : Name.t }

  val make : qname -> Name.t -> t
  val v : string -> string -> string -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit

  module Set : Stdlib.Set.S with type elt = t
  module Map : Stdlib.Map.S with type key = t
end

(** Unordered pairs of qualified names, used as keys of the assertion and
    similarity matrices.  The pair [(a, b)] and the pair [(b, a)] are the
    same key; accessors report whether the stored orientation flips. *)
module Pair : sig
  type qname = t

  type t
  (** An unordered pair of distinct or equal qualified names. *)

  val make : qname -> qname -> t
  (** [make a b] normalises the orientation so that [make a b] and
      [make b a] are equal. *)

  val fst : t -> qname
  val snd : t -> qname

  val flipped : qname -> qname -> bool
  (** [flipped a b] is [true] when [make a b] stores the pair as
      [(b, a)]; callers use it to re-orient direction-sensitive
      assertions. *)

  val other : t -> qname -> qname
  (** [other p q] is the member of [p] that is not [q].
      @raise Not_found if [q] is not a member of [p]. *)

  val mem : qname -> t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit

  module Set : Stdlib.Set.S with type elt = t
  module Map : Stdlib.Map.S with type key = t
end
