type participant = { role : Name.t option; obj : Name.t; card : Cardinality.t }

type t = {
  name : Name.t;
  participants : participant list;
  attributes : Attribute.t list;
}

let participant ?role obj card = { role; obj; card }

let make ?(attrs = []) name participants =
  { name; participants; attributes = attrs }

let binary ?attrs name (obj1, card1) (obj2, card2) =
  make ?attrs name [ participant obj1 card1; participant obj2 card2 ]

let arity r = List.length r.participants
let participates obj r = List.exists (fun p -> Name.equal p.obj obj) r.participants

let participant_for ?role obj r =
  let matches p =
    Name.equal p.obj obj
    &&
    match role with
    | None -> true
    | Some want -> ( match p.role with Some h -> Name.equal h want | None -> false)
  in
  List.find_opt matches r.participants

let roles r = List.map (fun p -> p.role) r.participants
let objects r = List.map (fun p -> p.obj) r.participants
let attribute n r = Attribute.find n r.attributes

let rename_participant old_name new_name r =
  let rename p =
    if Name.equal p.obj old_name then { p with obj = new_name } else p
  in
  { r with participants = List.map rename r.participants }

let equal_participant a b =
  Option.equal Name.equal a.role b.role
  && Name.equal a.obj b.obj
  && Cardinality.equal a.card b.card

let equal a b =
  Name.equal a.name b.name
  && List.length a.participants = List.length b.participants
  && List.for_all2 equal_participant a.participants b.participants
  && List.length a.attributes = List.length b.attributes
  && List.for_all2 Attribute.equal a.attributes b.attributes

let compare a b =
  match Name.compare a.name b.name with
  | 0 -> Stdlib.compare a b
  | c -> c

let pp_participant fmt p =
  (match p.role with
  | Some role -> Format.fprintf fmt "%a:" Name.pp role
  | None -> ());
  Format.fprintf fmt "%a %a" Name.pp p.obj Cardinality.pp p.card

let pp fmt r =
  Format.fprintf fmt "@[<v 2>relationship %a (%a) {%a@]@,}" Name.pp r.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_participant)
    r.participants
    (fun fmt attrs ->
      List.iter (fun a -> Format.fprintf fmt "@,%a;" Attribute.pp a) attrs)
    r.attributes
