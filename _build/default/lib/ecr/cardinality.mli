(** Structural (cardinality) constraints on relationship participation.

    The ECR model specifies, for each object class participating in a
    relationship set, a pair [(i1, i2)] with [0 <= i1 <= i2] and
    [i2 > 0]: every entity of the class participates in at least [i1]
    and at most [i2] relationship instances. *)

type bound = Finite of int | Many  (** [Many] is the paper's "N". *)

type t = private { min : int; max : bound }

exception Invalid of string

val make : int -> bound -> t
(** [make i1 i2] checks [0 <= i1], [i2 > 0] and [i1 <= i2].
    @raise Invalid when the pair violates the ECR rules. *)

val exactly_one : t  (** (1,1) — mandatory, functional *)

val at_most_one : t  (** (0,1) — optional, functional *)

val at_least_one : t  (** (1,N) — mandatory, multivalued *)

val any : t  (** (0,N) — optional, multivalued *)

val total : t -> bool
(** [total c] is [true] when participation is mandatory ([min >= 1]). *)

val functional : t -> bool
(** [functional c] is [true] when [max = Finite 1]. *)

val includes : t -> t -> bool
(** [includes outer inner] is [true] when every participation count legal
    under [inner] is legal under [outer]. *)

val union : t -> t -> t
(** Least constraint admitting the behaviours of both arguments; used
    when merging relationship sets. *)

val intersect : t -> t -> t option
(** Greatest constraint admitted by both, or [None] when incompatible
    (e.g. (2,2) vs (0,1)). *)

val satisfied : int -> t -> bool
(** [satisfied k c] is [true] when an entity with [k] participations
    satisfies [c]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val of_string : string -> t
(** Parses ["(1,N)"], ["(0,3)"], etc. @raise Invalid on bad syntax. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
