type t = { schema : Name.t; obj : Name.t }

let make schema obj = { schema; obj }
let v schema obj = { schema = Name.v schema; obj = Name.v obj }
let equal a b = Name.equal a.schema b.schema && Name.equal a.obj b.obj

let compare a b =
  match Name.compare a.schema b.schema with
  | 0 -> Name.compare a.obj b.obj
  | c -> c

let to_string q = Name.to_string q.schema ^ "." ^ Name.to_string q.obj

let of_string s =
  match String.index_opt s '.' with
  | None -> raise (Name.Invalid s)
  | Some i ->
      v (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))

let pp fmt q = Format.pp_print_string fmt (to_string q)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Stdlib.Set.Make (Ord)
module Map = Stdlib.Map.Make (Ord)

module Attr = struct
  type qname = t

  type t = { owner : qname; attr : Name.t }

  let make owner attr = { owner; attr }
  let v schema obj attr = { owner = v schema obj; attr = Name.v attr }

  let equal a b = equal a.owner b.owner && Name.equal a.attr b.attr

  let compare a b =
    match Ord.compare a.owner b.owner with
    | 0 -> Name.compare a.attr b.attr
    | c -> c

  let to_string a = to_string a.owner ^ "." ^ Name.to_string a.attr
  let pp fmt a = Format.pp_print_string fmt (to_string a)

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Set = Stdlib.Set.Make (Ord)
  module Map = Stdlib.Map.Make (Ord)
end

module Pair = struct
  type qname = t

  (* Invariant: [lo <= hi] in the global order, so structural comparison
     of pairs is orientation-independent. *)
  type t = { lo : qname; hi : qname }

  let make a b = if Ord.compare a b <= 0 then { lo = a; hi = b } else { lo = b; hi = a }
  let fst p = p.lo
  let snd p = p.hi
  let flipped a b = Ord.compare a b > 0

  let other p q =
    if equal p.lo q then p.hi
    else if equal p.hi q then p.lo
    else raise Not_found

  let mem q p = equal p.lo q || equal p.hi q
  let equal a b = equal a.lo b.lo && equal a.hi b.hi

  let compare a b =
    match Ord.compare a.lo b.lo with 0 -> Ord.compare a.hi b.hi | c -> c

  let to_string p = "(" ^ to_string p.lo ^ ", " ^ to_string p.hi ^ ")"
  let pp fmt p = Format.pp_print_string fmt (to_string p)

  module Ord = struct
    type nonrec t = t

    let compare = compare
  end

  module Set = Stdlib.Set.Make (Ord)
  module Map = Stdlib.Map.Make (Ord)
end
