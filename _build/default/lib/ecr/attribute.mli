(** Attributes of object classes and relationship sets.

    An attribute has a name, a domain, and a key flag (the "uniqueness"
    property of Screen 5).  Attributes of a category are the ones
    {e locally} declared on it; inherited attributes are computed by
    {!Schema.all_attributes}. *)

type t = { name : Name.t; domain : Domain.t; key : bool }

val make : ?key:bool -> Name.t -> Domain.t -> t
(** [make name domain] builds a non-key attribute; pass [~key:true] for
    key attributes. *)

val v : ?key:bool -> string -> string -> t
(** [v name domain] builds an attribute from raw strings, e.g.
    [v ~key:true "Name" "char"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val rename : Name.t -> t -> t
(** [rename n a] is [a] with its name replaced by [n]. *)

val pp : Format.formatter -> t -> unit
(** Prints [name : domain] with a [!] suffix on keys, the convention used
    by the DDL printer. *)

val find : Name.t -> t list -> t option
(** [find n attrs] looks an attribute up by name. *)

val names : t list -> Name.t list
val keys : t list -> t list

val well_formed : t list -> (unit, string) result
(** Checks that attribute names within one structure are unique. *)
