type kind = Entity_set | Category of Name.t list

type t = { name : Name.t; kind : kind; attributes : Attribute.t list }

let entity ?(attrs = []) name = { name; kind = Entity_set; attributes = attrs }

let category ?(attrs = []) ~parents name =
  { name; kind = Category parents; attributes = attrs }

let is_entity oc = oc.kind = Entity_set
let is_category oc = not (is_entity oc)
let parents oc = match oc.kind with Entity_set -> [] | Category ps -> ps
let attribute n oc = Attribute.find n oc.attributes
let local_attributes oc = oc.attributes
let kind_letter oc = match oc.kind with Entity_set -> 'e' | Category _ -> 'c'

let equal_kind a b =
  match (a, b) with
  | Entity_set, Entity_set -> true
  | Category xs, Category ys ->
      List.length xs = List.length ys && List.for_all2 Name.equal xs ys
  | (Entity_set | Category _), _ -> false

let equal a b =
  Name.equal a.name b.name
  && equal_kind a.kind b.kind
  && List.length a.attributes = List.length b.attributes
  && List.for_all2 Attribute.equal a.attributes b.attributes

let compare a b =
  match Name.compare a.name b.name with
  | 0 -> Stdlib.compare (a.kind, a.attributes) (b.kind, b.attributes)
  | c -> c

let pp fmt oc =
  let kind_str =
    match oc.kind with
    | Entity_set -> "entity"
    | Category ps ->
        "category of " ^ String.concat ", " (List.map Name.to_string ps)
  in
  Format.fprintf fmt "@[<v 2>%s %a {%a@]@,}" kind_str Name.pp oc.name
    (fun fmt attrs ->
      List.iter (fun a -> Format.fprintf fmt "@,%a;" Attribute.pp a) attrs)
    oc.attributes
