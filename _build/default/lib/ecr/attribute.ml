type t = { name : Name.t; domain : Domain.t; key : bool }

let make ?(key = false) name domain = { name; domain; key }
let v ?key name domain = make ?key (Name.v name) (Domain.of_string domain)

let equal a b =
  Name.equal a.name b.name && Domain.equal a.domain b.domain && a.key = b.key

let compare a b =
  match Name.compare a.name b.name with
  | 0 -> (
      match Domain.compare a.domain b.domain with
      | 0 -> Bool.compare a.key b.key
      | c -> c)
  | c -> c

let rename name a = { a with name }

let pp fmt a =
  Format.fprintf fmt "%a : %a%s" Name.pp a.name Domain.pp a.domain
    (if a.key then " !" else "")

let find n attrs = List.find_opt (fun a -> Name.equal a.name n) attrs
let names attrs = List.map (fun a -> a.name) attrs
let keys attrs = List.filter (fun a -> a.key) attrs

let well_formed attrs =
  let rec check seen = function
    | [] -> Ok ()
    | a :: rest ->
        if Name.Set.mem a.name seen then
          Error ("duplicate attribute " ^ Name.to_string a.name)
        else check (Name.Set.add a.name seen) rest
  in
  check Name.Set.empty attrs
