(** Identifiers used throughout the ECR model.

    A name is a non-empty string starting with a letter or underscore and
    containing only letters, digits and underscores.  Names compare
    case-sensitively: the paper's examples distinguish [Student] from
    [student] only by convention, and we preserve the author's spelling. *)

type t
(** An identifier. *)

exception Invalid of string
(** Raised by {!of_string} on a malformed identifier; the payload is the
    offending string. *)

val of_string : string -> t
(** [of_string s] validates [s] as an identifier.
    @raise Invalid if [s] is empty or contains an illegal character. *)

val of_string_opt : string -> t option
(** Like {!of_string}, returning [None] instead of raising. *)

val to_string : t -> string

val v : string -> t
(** Terse alias for {!of_string}, used pervasively when building schemas
    in code. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val equal_ci : t -> t -> bool
(** Case-insensitive equality, used only by matching heuristics. *)

val is_valid : string -> bool
(** [is_valid s] is [true] iff [of_string s] would succeed. *)

val concat : ?sep:string -> t -> t -> t
(** [concat a b] joins two names with [sep] (default ["_"]). *)

val abbreviate : int -> t -> string
(** [abbreviate n name] is the first [n] characters of [name], used when
    synthesising derived-class names such as [D_Stud_Facu]. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
