(** Structural comparison of two schemas.

    Used by tests (golden comparisons of integrated schemas) and by the
    tool's bookkeeping when a DDA edits a previously-defined schema. *)

type change =
  | Added of Schema.structure
  | Removed of Schema.structure
  | Changed of Schema.structure * Schema.structure  (** before, after *)

val diff : Schema.t -> Schema.t -> change list
(** [diff old_schema new_schema] lists per-structure differences, keyed
    by structure name.  The schemas' own names are not compared. *)

val is_empty : change list -> bool

val pp_change : Format.formatter -> change -> unit
val pp : Format.formatter -> change list -> unit
