type bound = Finite of int | Many

type t = { min : int; max : bound }

exception Invalid of string

let bound_ok min = function
  | Many -> true
  | Finite n -> n > 0 && min <= n

let make min max =
  if min < 0 then raise (Invalid (Printf.sprintf "negative minimum %d" min));
  if not (bound_ok min max) then
    raise
      (Invalid
         (Printf.sprintf "bad maximum for (%d,%s)" min
            (match max with Many -> "N" | Finite n -> string_of_int n)));
  { min; max }

let exactly_one = { min = 1; max = Finite 1 }
let at_most_one = { min = 0; max = Finite 1 }
let at_least_one = { min = 1; max = Many }
let any = { min = 0; max = Many }
let total c = c.min >= 1
let functional c = c.max = Finite 1

let bound_le a b =
  match (a, b) with
  | _, Many -> true
  | Many, Finite _ -> false
  | Finite x, Finite y -> x <= y

let includes outer inner =
  outer.min <= inner.min && bound_le inner.max outer.max

let bound_max a b = if bound_le a b then b else a
let bound_min a b = if bound_le a b then a else b

let union a b = { min = Int.min a.min b.min; max = bound_max a.max b.max }

let intersect a b =
  let min = Int.max a.min b.min and max = bound_min a.max b.max in
  if bound_ok min max then Some { min; max } else None

let satisfied k c =
  k >= c.min && (match c.max with Many -> true | Finite n -> k <= n)

let equal a b = a.min = b.min && a.max = b.max

let compare a b =
  match Int.compare a.min b.min with
  | 0 -> (
      match (a.max, b.max) with
      | Many, Many -> 0
      | Many, Finite _ -> 1
      | Finite _, Many -> -1
      | Finite x, Finite y -> Int.compare x y)
  | c -> c

let bound_to_string = function Many -> "N" | Finite n -> string_of_int n

let to_string c = "(" ^ string_of_int c.min ^ "," ^ bound_to_string c.max ^ ")"

let of_string s =
  let s = String.trim s in
  let body =
    if String.length s >= 2 && s.[0] = '(' && s.[String.length s - 1] = ')'
    then String.sub s 1 (String.length s - 2)
    else s
  in
  match String.split_on_char ',' body with
  | [ lo; hi ] -> (
      let lo = String.trim lo and hi = String.trim hi in
      let max =
        match String.uppercase_ascii hi with
        | "N" | "M" | "*" -> Many
        | _ -> (
            match int_of_string_opt hi with
            | Some n -> Finite n
            | None -> raise (Invalid s))
      in
      match int_of_string_opt lo with
      | Some min -> make min max
      | None -> raise (Invalid s))
  | _ -> raise (Invalid s)

let pp fmt c = Format.pp_print_string fmt (to_string c)
