type t =
  | Char_string
  | Integer
  | Real
  | Boolean
  | Date
  | Enum of string list
  | Named of Name.t

let norm_enum values = List.sort_uniq String.compare values

let equal a b =
  match (a, b) with
  | Char_string, Char_string
  | Integer, Integer
  | Real, Real
  | Boolean, Boolean
  | Date, Date ->
      true
  | Enum xs, Enum ys -> norm_enum xs = norm_enum ys
  | Named x, Named y -> Name.equal x y
  | (Char_string | Integer | Real | Boolean | Date | Enum _ | Named _), _ ->
      false

let rank = function
  | Char_string -> 0
  | Integer -> 1
  | Real -> 2
  | Boolean -> 3
  | Date -> 4
  | Enum _ -> 5
  | Named _ -> 6

let compare a b =
  match (a, b) with
  | Enum xs, Enum ys -> Stdlib.compare (norm_enum xs) (norm_enum ys)
  | Named x, Named y -> Name.compare x y
  | _ -> Int.compare (rank a) (rank b)

let subset xs ys =
  List.for_all (fun x -> List.exists (String.equal x) ys) xs

let compatible a b =
  equal a b
  ||
  match (a, b) with
  | Integer, Real | Real, Integer -> true
  | Enum xs, Enum ys -> subset xs ys || subset ys xs
  | _ -> false

let join a b =
  if equal a b then Some a
  else
    match (a, b) with
    | Integer, Real | Real, Integer -> Some Real
    | Enum xs, Enum ys when subset xs ys || subset ys xs ->
        Some (Enum (norm_enum (xs @ ys)))
    | _ -> None

let of_string s =
  match String.lowercase_ascii s with
  | "char" | "string" | "text" -> Char_string
  | "int" | "integer" -> Integer
  | "real" | "float" -> Real
  | "bool" | "boolean" -> Boolean
  | "date" -> Date
  | low
    when String.length low > 5
         && String.sub low 0 5 = "enum("
         && low.[String.length low - 1] = ')' ->
      let body = String.sub s 5 (String.length s - 6) in
      let values =
        String.split_on_char ',' body
        |> List.map String.trim
        |> List.filter (fun v -> v <> "")
      in
      Enum (norm_enum values)
  | _ -> Named (Name.of_string s)

let to_string = function
  | Char_string -> "char"
  | Integer -> "int"
  | Real -> "real"
  | Boolean -> "bool"
  | Date -> "date"
  | Enum values -> "enum(" ^ String.concat "," values ^ ")"
  | Named n -> Name.to_string n

let pp fmt d = Format.pp_print_string fmt (to_string d)
