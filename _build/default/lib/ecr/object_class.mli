(** Object classes: entity sets and categories.

    The ECR model classifies entities into disjoint {e entity sets}; a
    {e category} is a subset of the entities of one or more object
    classes (its parents), inheriting their attributes.  "Object class"
    is the paper's collective term for both. *)

type kind =
  | Entity_set
  | Category of Name.t list
      (** parent object classes — the "entities and categories connected
          to a category" of the Category Information Collection Screen.
          Non-empty for well-formed categories. *)

type t = { name : Name.t; kind : kind; attributes : Attribute.t list }

val entity : ?attrs:Attribute.t list -> Name.t -> t
val category : ?attrs:Attribute.t list -> parents:Name.t list -> Name.t -> t

val is_entity : t -> bool
val is_category : t -> bool

val parents : t -> Name.t list
(** [parents oc] is the (possibly empty) parent list. *)

val attribute : Name.t -> t -> Attribute.t option
(** Looks up a {e local} attribute. *)

val local_attributes : t -> Attribute.t list

val kind_letter : t -> char
(** ['e'] or ['c'] — the Type(E/C/R) column of Screen 3. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
