(** ECR schemas.

    A schema is a named collection of structures: entity sets, categories
    and relationship sets, all sharing one namespace (the Structure
    Information Collection Screen lists them in one table).  The module
    offers pure construction and editing operations — the interactive
    collection phase of the tool is a thin layer over [add_*] /
    [remove_structure] / [update_*] — plus the derived views integration
    needs: inherited attributes, the IS-A graph, and validation. *)

type t

type structure =
  | Obj of Object_class.t
  | Rel of Relationship.t

(** {1 Construction} *)

val empty : Name.t -> t
(** [empty name] is a schema with no structures. *)

val make :
  Name.t -> objects:Object_class.t list -> relationships:Relationship.t list -> t
(** [make name ~objects ~relationships] builds a schema in one step.
    @raise Invalid_argument on duplicate structure names. *)

val add_object : Object_class.t -> t -> t
(** @raise Invalid_argument if the name is already used. *)

val add_relationship : Relationship.t -> t -> t
(** @raise Invalid_argument if the name is already used. *)

val remove_structure : Name.t -> t -> t
(** Removes an object class or relationship set; a no-op when absent.
    Dangling references this creates are reported by {!validate}. *)

val replace_object : Object_class.t -> t -> t
(** Replaces the object class with the same name (adds when absent). *)

val replace_relationship : Relationship.t -> t -> t

val rename : Name.t -> t -> t
(** Renames the schema itself. *)

(** {1 Access} *)

val name : t -> Name.t
val objects : t -> Object_class.t list
(** In insertion order, matching the screens' listing order. *)

val relationships : t -> Relationship.t list
val structures : t -> structure list
val entities : t -> Object_class.t list
val categories : t -> Object_class.t list

val find_object : Name.t -> t -> Object_class.t option
val find_relationship : Name.t -> t -> Relationship.t option
val find_structure : Name.t -> t -> structure option
val mem : Name.t -> t -> bool

val size : t -> int
(** Number of structures. *)

(** {1 Derived views} *)

val all_attributes : t -> Name.t -> Attribute.t list
(** [all_attributes s obj] is the local attributes of [obj] followed by
    the attributes inherited from its ancestors (each inherited name
    appearing once, nearest declaration winning).
    @raise Not_found when [obj] names no object class. *)

val children : t -> Name.t -> Name.t list
(** Categories having [obj] among their parents. *)

val ancestors : t -> Name.t -> Name.t list
(** Transitive parents, nearest first, without duplicates. *)

val descendants : t -> Name.t -> Name.t list

val is_ancestor : t -> ancestor:Name.t -> Name.t -> bool

val relationships_of : t -> Name.t -> Relationship.t list
(** Relationship sets in which the object class participates directly. *)

val roots : t -> Object_class.t list
(** Object classes with no parents (i.e. all entity sets, plus malformed
    parentless categories). *)

(** {1 Validation} *)

type error =
  | Duplicate_structure of Name.t
  | Duplicate_attribute of Name.t * Name.t  (** structure, attribute *)
  | Unknown_parent of Name.t * Name.t  (** category, missing parent *)
  | Parent_is_relationship of Name.t * Name.t
  | Category_without_parent of Name.t
  | Cyclic_categories of Name.t list
  | Unknown_participant of Name.t * Name.t  (** relationship, missing class *)
  | Participant_is_relationship of Name.t * Name.t
  | Relationship_arity of Name.t * int  (** must be >= 2 *)
  | Ambiguous_roles of Name.t
      (** same class participates twice without distinguishing roles *)
  | Attribute_shadows_inherited of Name.t * Name.t
      (** category redeclares an inherited attribute with an
          incompatible domain *)

val validate : t -> error list
(** All well-formedness violations; the empty list means the schema is a
    legal ECR schema. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val qname : t -> Name.t -> Qname.t
(** [qname s obj] qualifies a structure name with this schema's name. *)

val attr_qname : t -> Name.t -> Name.t -> Qname.Attr.t
