(** Relationship sets.

    A relationship set associates entities of two or more object classes;
    each participation carries a structural (cardinality) constraint and
    an optional role name (needed when the same object class participates
    twice, e.g. a [Supervises] relationship between two [Employee]s). *)

type participant = {
  role : Name.t option;  (** distinguishes repeated participants *)
  obj : Name.t;  (** the participating object class *)
  card : Cardinality.t;
      (** how entities of [obj] participate: at least [min], at most
          [max] relationship instances *)
}

type t = { name : Name.t; participants : participant list; attributes : Attribute.t list }

val participant : ?role:Name.t -> Name.t -> Cardinality.t -> participant

val make :
  ?attrs:Attribute.t list -> Name.t -> participant list -> t
(** [make name participants] builds a relationship set.  Well-formedness
    (arity >= 2, participants resolvable, roles unique) is checked by
    {!Schema.validate}. *)

val binary :
  ?attrs:Attribute.t list ->
  Name.t ->
  Name.t * Cardinality.t ->
  Name.t * Cardinality.t ->
  t
(** Convenience constructor for the overwhelmingly common binary case. *)

val arity : t -> int
val participates : Name.t -> t -> bool

val participant_for : ?role:Name.t -> Name.t -> t -> participant option
(** [participant_for obj r] finds the participation of [obj]
    (disambiguated by [role] if given). *)

val roles : t -> Name.t option list
val objects : t -> Name.t list
val attribute : Name.t -> t -> Attribute.t option

val rename_participant : Name.t -> Name.t -> t -> t
(** [rename_participant old_name new_name r] redirects every
    participation of [old_name] to [new_name]; used when integration
    replaces an object class with its integrated counterpart. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
