(** Graphviz export of ECR schemas.

    The paper's figures draw schemas as ER diagrams (rectangles for
    entity sets, diamonds for relationship sets, category links for
    IS-A edges).  [to_dot] renders the same structure in Graphviz [dot]
    syntax so the reproduced figures can be inspected visually. *)

val to_dot : ?rankdir:string -> Schema.t -> string
(** [to_dot s] is a complete [digraph] description of [s].  Entity sets
    are boxes, categories are boxes with rounded corners linked to their
    parents by [isa]-labelled edges, relationship sets are diamonds
    linked to their participants with cardinality-labelled edges, and
    attributes are listed inside each node (keys marked with [*]). *)

val save : string -> Schema.t -> unit
(** [save path s] writes [to_dot s] to [path]. *)
