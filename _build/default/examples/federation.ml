(* Global schema design: federating existing databases.

   The paper's second integration context: several databases already
   exist and a single global schema is designed over them.  Here one
   database is relational (a payroll system) and one is hierarchical (an
   IMS-style personnel tree); both are first abstracted into the ECR
   model following the Navathe-Awong procedure (lib/translate), then
   integrated, and finally global queries are unfolded onto the
   component databases.

   Run with: dune exec examples/federation.exe *)

open Ecr
module V = Instance.Value
module S = Instance.Store

(* ---- the relational payroll database ----------------------------- *)

let payroll_relational =
  {
    Translate.Relational.db_name = "payroll";
    relations =
      [
        Translate.Relational.relation ~pk:[ "ssn" ]
          ~fks:[ Translate.Relational.fk [ "dno" ] "dept" [ "dno" ] ]
          "emp"
          [
            ("ssn", "char", false);
            ("name", "char", false);
            ("salary", "real", true);
            ("dno", "int", false);
          ];
        Translate.Relational.relation ~pk:[ "dno" ] "dept"
          [ ("dno", "int", false); ("dname", "char", false); ("budget", "real", true) ];
        Translate.Relational.relation ~pk:[ "ssn"; "pno" ]
          ~fks:
            [
              Translate.Relational.fk [ "ssn" ] "emp" [ "ssn" ];
              Translate.Relational.fk [ "pno" ] "project" [ "pno" ];
            ]
          "assign"
          [ ("ssn", "char", false); ("pno", "int", false); ("hours", "real", true) ];
        Translate.Relational.relation ~pk:[ "pno" ] "project"
          [ ("pno", "int", false); ("pname", "char", false) ];
      ];
  }

(* ---- the hierarchical personnel database ------------------------- *)

let personnel_hierarchical =
  {
    Translate.Hierarchical.hdb_name = "personnel";
    records =
      [
        Translate.Hierarchical.record "department"
          [ ("deptno", "int", true); ("deptname", "char", false) ];
        Translate.Hierarchical.record ~parent:"department" "employee"
          [ ("ssn", "char", true); ("fullname", "char", false); ("phone", "char", false) ];
      ];
  }

let qa = Qname.Attr.v
let q = Qname.v

let () =
  let payroll = Translate.Relational.to_ecr payroll_relational in
  let personnel = Translate.Hierarchical.to_ecr personnel_hierarchical in
  Format.printf "=== Translated component schemas ===@.%s@.%s@.@."
    (Ddl.Printer.to_string payroll)
    (Ddl.Printer.to_string personnel);

  let dda =
    Integrate.Dda.of_assertion_list
      ~equivalences:
        [
          (qa "payroll" "emp" "ssn", qa "personnel" "employee" "ssn");
          (qa "payroll" "emp" "name", qa "personnel" "employee" "fullname");
          (qa "payroll" "dept" "dno", qa "personnel" "department" "deptno");
          (qa "payroll" "dept" "dname", qa "personnel" "department" "deptname");
        ]
      ~relationships:
        [
          ( q "payroll" "emp_dept",
            Integrate.Assertion.Equal,
            q "personnel" "department_employee" );
        ]
      [
        (q "payroll" "emp", Integrate.Assertion.Equal, q "personnel" "employee");
        (q "payroll" "dept", Integrate.Assertion.Equal, q "personnel" "department");
      ]
  in
  let result, _stats =
    Integrate.Protocol.run
      ~options:
        { Integrate.Protocol.defaults with exhaustive_attribute_pairs = true }
      ~name:"global" [ payroll; personnel ] dda
  in
  Format.printf "=== Global schema ===@.%s@.%s@.@."
    (Ddl.Printer.to_string result.Integrate.Result.schema)
    (Integrate.Result.summary result);

  (* ---- operational databases --------------------------------------- *)
  let st_p = S.create payroll in
  let st_p, cs =
    S.insert (Name.v "dept")
      (S.tuple [ ("dno", V.int 1); ("dname", V.str "CS"); ("budget", V.real 1e6) ])
      st_p
  in
  let st_p, ee =
    S.insert (Name.v "dept")
      (S.tuple [ ("dno", V.int 2); ("dname", V.str "EE"); ("budget", V.real 8e5) ])
      st_p
  in
  let emp ssn name salary =
    S.tuple [ ("ssn", V.str ssn); ("name", V.str name); ("salary", V.real salary) ]
  in
  let st_p, e1 = S.insert (Name.v "emp") (emp "100" "Ann" 95000.) st_p in
  let st_p, e2 = S.insert (Name.v "emp") (emp "200" "Ben" 87000.) st_p in
  let st_p = S.relate (Name.v "emp_dept") [ e1; cs ] Name.Map.empty st_p in
  let st_p = S.relate (Name.v "emp_dept") [ e2; ee ] Name.Map.empty st_p in

  let st_h = S.create personnel in
  let st_h, d1 =
    S.insert (Name.v "department")
      (S.tuple [ ("deptno", V.int 1); ("deptname", V.str "CS") ])
      st_h
  in
  let st_h, p1 =
    S.insert (Name.v "employee")
      (S.tuple
         [ ("ssn", V.str "100"); ("fullname", V.str "Ann"); ("phone", V.str "x11") ])
      st_h
  in
  let st_h, p3 =
    S.insert (Name.v "employee")
      (S.tuple
         [ ("ssn", V.str "300"); ("fullname", V.str "Eve"); ("phone", V.str "x33") ])
      st_h
  in
  let st_h =
    S.relate (Name.v "department_employee") [ p1; d1 ] Name.Map.empty st_h
  in
  let st_h =
    S.relate (Name.v "department_employee") [ p3; d1 ] Name.Map.empty st_h
  in

  (* The global extent of employees is the union of both databases. *)
  let integrated = result.Integrate.Result.schema in
  let mapping = result.Integrate.Result.mapping in
  let emp_class =
    match Integrate.Mapping.object_target (q "payroll" "emp") mapping with
    | Some n -> n
    | None -> failwith "emp not mapped"
  in
  let global_query =
    Query.Ast.query (Name.to_string emp_class) ~select:[ "D_name" ]
  in
  Format.printf "=== Global query ===@.%s@." (Query.Ast.to_string global_query);
  List.iter
    (fun part ->
      Format.printf "  unfolds to [%s] %s@."
        (Name.to_string part.Query.Rewrite.component)
        (Query.Ast.to_string part.Query.Rewrite.query))
    (Query.Rewrite.to_components mapping ~integrated global_query);
  let answers =
    Query.Rewrite.run_global mapping ~integrated
      ~stores:[ (Name.v "payroll", st_p); (Name.v "personnel", st_h) ]
      global_query
  in
  Format.printf "answers (outer union of both databases):@.";
  List.iter (fun r -> Format.printf "  %s@." (Query.Eval.row_to_string r)) answers;

  (* Sanity: migrating both databases and evaluating on the migrated
     instance covers the same answers. *)
  let merged, _ =
    Query.Migrate.run mapping ~integrated [ (payroll, st_p); (personnel, st_h) ]
  in
  let direct = Query.Eval.run global_query merged in
  Format.printf "covered by migrated instance: %b@."
    (Query.Rewrite.covers direct answers && Query.Rewrite.covers answers direct)
