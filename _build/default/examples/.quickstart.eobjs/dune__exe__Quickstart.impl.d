examples/quickstart.ml: Attribute Ddl Ecr Format Integrate List Name Object_class Qname Schema String Workload
