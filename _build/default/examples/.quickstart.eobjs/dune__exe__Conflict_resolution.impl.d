examples/conflict_resolution.ml: Ddl Ecr Format Integrate List Qname Tui Workload
