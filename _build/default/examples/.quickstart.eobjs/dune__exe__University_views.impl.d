examples/university_views.ml: Attribute Cardinality Ddl Ecr Format Instance Integrate List Name Object_class Qname Query Relationship Schema
