examples/university_views.mli:
