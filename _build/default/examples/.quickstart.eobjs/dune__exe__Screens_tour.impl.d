examples/screens_tour.ml: Buffer Format Integrate List Tui Workload
