examples/data_dictionary.ml: Attribute Ddl Dictionary Ecr Format Integrate List Name Object_class Qname Schema String Translate
