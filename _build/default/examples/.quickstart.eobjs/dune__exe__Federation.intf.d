examples/federation.mli:
