examples/screens_tour.mli:
