examples/data_dictionary.mli:
