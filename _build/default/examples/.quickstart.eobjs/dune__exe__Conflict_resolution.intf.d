examples/conflict_resolution.mli:
