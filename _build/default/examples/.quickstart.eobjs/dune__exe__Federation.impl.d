examples/federation.ml: Ddl Ecr Format Instance Integrate List Name Qname Query Translate
