examples/quickstart.mli:
