(* Logical database design: integrating user views.

   Three user views of a university database — the registrar's, student
   housing's, and academic advising's — are merged into one logical
   schema.  Afterwards, queries written against each view are translated
   to the logical schema through the generated mappings, and we verify
   on a populated database that the translated queries return the same
   answers.

   Run with: dune exec examples/university_views.exe *)

open Ecr
module V = Instance.Value
module S = Instance.Store

let registrar =
  Schema.make (Name.v "registrar")
    ~objects:
      [
        Object_class.entity
          ~attrs:
            [
              Attribute.v ~key:true "SSN" "char";
              Attribute.v "Name" "char";
              Attribute.v "GPA" "real";
            ]
          (Name.v "Student");
        Object_class.entity
          ~attrs:
            [
              Attribute.v ~key:true "Code" "char";
              Attribute.v "Title" "char";
              Attribute.v "Credits" "int";
            ]
          (Name.v "Course");
      ]
    ~relationships:
      [
        Relationship.binary
          ~attrs:[ Attribute.v "Term" "char" ]
          (Name.v "Enrolled")
          (Name.v "Student", Cardinality.any)
          (Name.v "Course", Cardinality.any);
      ]

let housing =
  Schema.make (Name.v "housing")
    ~objects:
      [
        Object_class.entity
          ~attrs:
            [
              Attribute.v ~key:true "SSN" "char";
              Attribute.v "Name" "char";
              Attribute.v "Meal_plan" "bool";
            ]
          (Name.v "Resident");
        Object_class.entity
          ~attrs:
            [
              Attribute.v ~key:true "Hall_name" "char";
              Attribute.v "Capacity" "int";
            ]
          (Name.v "Hall");
      ]
    ~relationships:
      [
        Relationship.binary (Name.v "Lives_in")
          (Name.v "Resident", Cardinality.exactly_one)
          (Name.v "Hall", Cardinality.any);
      ]

let advising =
  Schema.make (Name.v "advising")
    ~objects:
      [
        Object_class.entity
          ~attrs:
            [
              Attribute.v ~key:true "SSN" "char";
              Attribute.v "Name" "char";
              Attribute.v "Major" "char";
            ]
          (Name.v "Advisee");
        Object_class.entity
          ~attrs:
            [ Attribute.v ~key:true "Id" "char"; Attribute.v "Name" "char" ]
          (Name.v "Advisor");
      ]
    ~relationships:
      [
        Relationship.binary (Name.v "Advises")
          (Name.v "Advisor", Cardinality.at_least_one)
          (Name.v "Advisee", Cardinality.exactly_one);
      ]

let qa = Qname.Attr.v
let q = Qname.v

(* The DDA's session: every student is an advisee (the university
   assigns advisors to everyone), residents are a subset of students. *)
let dda =
  Integrate.Dda.of_assertion_list
    ~equivalences:
      [
        (qa "registrar" "Student" "SSN", qa "advising" "Advisee" "SSN");
        (qa "registrar" "Student" "Name", qa "advising" "Advisee" "Name");
        (qa "registrar" "Student" "SSN", qa "housing" "Resident" "SSN");
        (qa "registrar" "Student" "Name", qa "housing" "Resident" "Name");
      ]
    [
      (q "registrar" "Student", Integrate.Assertion.Equal, q "advising" "Advisee");
      (q "registrar" "Student", Integrate.Assertion.Contains, q "housing" "Resident");
    ]

let () =
  let result, stats =
    Integrate.Protocol.run
      ~options:
        { Integrate.Protocol.defaults with exhaustive_attribute_pairs = true }
      ~name:"university"
      [ registrar; housing; advising ]
      dda
  in
  Format.printf "=== Logical schema (n-ary integration of 3 views) ===@.%s@."
    (Ddl.Printer.to_string result.Integrate.Result.schema);
  Format.printf "%s@." (Integrate.Result.summary result);
  Format.printf
    "DDA effort: %d pairs presented, %d derived automatically@.@."
    stats.Integrate.Protocol.pairs_presented
    stats.Integrate.Protocol.pairs_skipped_determined;

  (* ------- operational check: populate the views, migrate, query ---- *)
  let st_r = S.create registrar in
  let student ssn name gpa =
    S.tuple [ ("SSN", V.str ssn); ("Name", V.str name); ("GPA", V.real gpa) ]
  in
  let st_r, _ = S.insert (Name.v "Student") (student "111" "Ann" 3.8) st_r in
  let st_r, _ = S.insert (Name.v "Student") (student "222" "Ben" 3.1) st_r in
  let st_r, _ = S.insert (Name.v "Student") (student "333" "Cyd" 2.4) st_r in

  let st_h = S.create housing in
  let resident ssn name plan =
    S.tuple [ ("SSN", V.str ssn); ("Name", V.str name); ("Meal_plan", V.bool plan) ]
  in
  let st_h, ann = S.insert (Name.v "Resident") (resident "111" "Ann" true) st_h in
  let st_h, hall =
    S.insert (Name.v "Hall")
      (S.tuple [ ("Hall_name", V.str "North"); ("Capacity", V.int 200) ])
      st_h
  in
  let st_h = S.relate (Name.v "Lives_in") [ ann; hall ] Name.Map.empty st_h in

  let st_a = S.create advising in
  let advisee ssn name major =
    S.tuple [ ("SSN", V.str ssn); ("Name", V.str name); ("Major", V.str major) ]
  in
  let st_a, _ = S.insert (Name.v "Advisee") (advisee "111" "Ann" "CS") st_a in
  let st_a, _ = S.insert (Name.v "Advisee") (advisee "222" "Ben" "EE") st_a in
  let st_a, _ = S.insert (Name.v "Advisee") (advisee "333" "Cyd" "ME") st_a in

  let merged, report =
    Query.Migrate.run result.Integrate.Result.mapping
      ~integrated:result.Integrate.Result.schema
      [ (registrar, st_r); (housing, st_h); (advising, st_a) ]
  in
  Format.printf
    "Migrated the three view databases: %d entities in, %d out (%d fused)@.@."
    report.Query.Migrate.entities_in report.Query.Migrate.entities_out
    report.Query.Migrate.fused;

  (* A registrar query: good students.  Written against the view... *)
  let view_query =
    Query.Ast.(
      query "Student"
        ~where:(atom "GPA" Ge (V.real 3.0))
        ~select:[ "Name"; "GPA" ])
  in
  let rewritten, back =
    Query.Rewrite.to_integrated result.Integrate.Result.mapping
      ~view:registrar view_query
  in
  Format.printf "view query      : %s@." (Query.Ast.to_string view_query);
  Format.printf "against logical : %s@." (Query.Ast.to_string rewritten);
  let against_view = Query.Eval.run view_query st_r in
  let against_logical = back (Query.Eval.run rewritten merged) in
  Format.printf "answers agree   : %b (%d rows)@.@."
    (Query.Eval.same_answers against_view against_logical)
    (List.length against_view);

  (* A housing query through its mapping. *)
  let housing_query =
    Query.Ast.(
      query "Resident" ~select:[ "Name" ]
        ~via:(join "Lives_in" "Hall" ~target_select:[ "Hall_name" ]))
  in
  let rewritten_h, back_h =
    Query.Rewrite.to_integrated result.Integrate.Result.mapping ~view:housing
      housing_query
  in
  Format.printf "housing query   : %s@." (Query.Ast.to_string housing_query);
  Format.printf "against logical : %s@." (Query.Ast.to_string rewritten_h);
  let a1 = Query.Eval.run housing_query st_h in
  let a2 = back_h (Query.Eval.run rewritten_h merged) in
  List.iter (fun r -> Format.printf "  %s@." (Query.Eval.row_to_string r)) a2;
  Format.printf "answers agree   : %b@." (Query.Eval.same_answers a1 a2)
