(* Assertion conflicts and their resolution (Screen 9).

   Recreates the paper's sc3/sc4 scenario: the DDA has asserted that
   every Instructor is a Grad_student, the schema itself says every
   Grad_student is a Student, so the tool derives Instructor 'contained
   in' Student by transitive composition.  When the DDA then tries to
   declare Instructor and Student disjoint, the tool refuses and shows
   the conflicting derivation; the DDA resolves it by weakening the
   earlier assertion to "may be" — exactly the repair the paper
   suggests.

   Run with: dune exec examples/conflict_resolution.exe *)

open Ecr

let q = Qname.v

let () =
  let sc3 = Workload.Paper.sc3 and sc4 = Workload.Paper.sc4 in
  Format.printf "=== Component schemas ===@.%s@.%s@.@."
    (Ddl.Printer.to_string sc3) (Ddl.Printer.to_string sc4);

  let ws =
    Integrate.Workspace.(add_schema sc4 (add_schema sc3 empty))
  in
  (* the DDA asserts: every instructor is a grad student *)
  let ws =
    match
      Integrate.Workspace.assert_object (q "sc3" "Instructor")
        Integrate.Assertion.Contained_in
        (q "sc4" "Grad_student") ws
    with
    | Ok ws -> ws
    | Error _ -> failwith "unexpected conflict"
  in
  (* transitive composition has already derived more *)
  let matrix = Integrate.Workspace.object_matrix ws in
  List.iter
    (fun (l, r, a) ->
      Format.printf "derived: %s %s %s@." (Qname.to_string l)
        (Integrate.Assertion.to_string a) (Qname.to_string r))
    (Integrate.Assertions.derived_assertions matrix);
  Format.printf "@.";

  (* now the conflicting assertion *)
  (match
     Integrate.Workspace.assert_object (q "sc3" "Instructor")
       Integrate.Assertion.Disjoint_nonintegrable (q "sc4" "Student") ws
   with
  | Ok _ -> failwith "the conflict was not detected!"
  | Error conflict ->
      Format.printf "=== Conflict detected (Screen 9) ===@.";
      print_string (Tui.Canvas.to_string (Tui.Screens.conflict_resolution conflict)));

  (* Resolution, as the paper suggests: "the DDA may change earlier
     assertion in line 3 ... realizing that all instructors are not
     grad_students".  Changing it to code 0 (disjoint) makes the whole
     session consistent; note that code 5 (may be) would NOT be enough —
     an instructor overlapping Grad_student necessarily intersects
     Student, and the tool would (correctly) still refuse. *)
  let ws =
    Integrate.Workspace.retract_object (q "sc3" "Instructor")
      (q "sc4" "Grad_student") ws
  in
  let ws =
    match
      Integrate.Workspace.assert_object (q "sc3" "Instructor")
        Integrate.Assertion.Disjoint_nonintegrable
        (q "sc4" "Grad_student") ws
    with
    | Ok ws -> ws
    | Error _ -> failwith "resolution should be consistent"
  in
  let ws =
    match
      Integrate.Workspace.assert_object (q "sc3" "Instructor")
        Integrate.Assertion.Disjoint_nonintegrable (q "sc4" "Student") ws
    with
    | Ok ws -> ws
    | Error _ -> failwith "corrected session should accept the disjointness"
  in
  ignore ws;
  Format.printf
    "After changing the earlier assertion to 'disjoint', the new \
     disjointness is accepted.@.";

  (* Note: 'Instructor may-be Grad_student' plus 'Instructor disjoint
     Student' is itself inconsistent set-theoretically (an overlap with
     Grad_student lies inside Student), and the tool notices that too: *)
  let ws2 =
    Integrate.Workspace.(add_schema sc4 (add_schema sc3 empty))
  in
  let ws2 =
    match
      Integrate.Workspace.assert_object (q "sc3" "Instructor")
        Integrate.Assertion.Disjoint_nonintegrable (q "sc4" "Student") ws2
    with
    | Ok ws -> ws
    | Error _ -> failwith "fresh disjointness is consistent"
  in
  match
    Integrate.Workspace.assert_object (q "sc3" "Instructor")
      Integrate.Assertion.May_be
      (q "sc4" "Grad_student") ws2
  with
  | Ok _ ->
      Format.printf
        "BUG: overlap with a subset of a disjoint class went undetected@."
  | Error conflict ->
      Format.printf
        "@.Ordering does not matter: asserting the overlap after the \
         disjointness is refused as well:@.";
      Format.printf "  (%s, %s): still-possible relations %s@."
        (Qname.to_string conflict.Integrate.Assertions.left)
        (Qname.to_string conflict.Integrate.Assertions.right)
        (Integrate.Rel.to_string conflict.Integrate.Assertions.current)
