(* The data dictionary: tools sharing one representation.

   Section 4 of the paper: "A common representation of the database
   objects and the mappings between them could be kept in a data
   dictionary available to all of the tools" — a schema translation tool
   feeding the integration tool feeding physical design.  This example
   plays three tools:

   1. a "translation tool" abstracts a relational payroll database into
      ECR and writes its half of the dictionary;
   2. a "design tool" contributes a native ECR view and the session a
      DDA recorded against it (equivalences, assertions);
   3. the integration tool merges both dictionaries, reports the
      analysis issues, and integrates.

   Run with: dune exec examples/data_dictionary.exe *)

open Ecr

let payroll_db =
  {
    Translate.Relational.db_name = "payroll";
    relations =
      [
        Translate.Relational.relation ~pk:[ "eno" ] "emp"
          [ ("eno", "char", false); ("ename", "char", false); ("salary", "real", true) ];
      ];
  }

let hr_view =
  Schema.make (Name.v "hr")
    ~objects:
      [
        Object_class.entity
          ~attrs:
            [
              Attribute.v ~key:true "Emp_no" "char";
              Attribute.v "Name" "char";
              Attribute.v "Hired" "date";
            ]
          (Name.v "Employee");
      ]
    ~relationships:[]

let () =
  (* Tool 1: schema translation writes a dictionary. *)
  let translated = Translate.Relational.to_ecr payroll_db in
  let dict1 =
    Dictionary.to_string
      (Integrate.Workspace.add_schema translated Integrate.Workspace.empty)
  in
  Format.printf "=== dictionary written by the translation tool ===@.%s@." dict1;

  (* Tool 2: the design tool contributes a view plus its session. *)
  let ws2 = Integrate.Workspace.add_schema hr_view Integrate.Workspace.empty in
  let ws2 =
    Integrate.Workspace.declare_equivalent
      (Qname.Attr.v "hr" "Employee" "Emp_no")
      (Qname.Attr.v "payroll" "emp" "eno")
      ws2
  in
  let ws2 =
    Integrate.Workspace.declare_equivalent
      (Qname.Attr.v "hr" "Employee" "Name")
      (Qname.Attr.v "payroll" "emp" "ename")
      ws2
  in
  let dict2 = Dictionary.to_string ws2 in
  Format.printf "=== dictionary written by the design tool ===@.%s@." dict2;

  (* Tool 3: merge the dictionaries, analyse, assert, integrate. *)
  let ws =
    Dictionary.merge (Dictionary.of_string dict1) (Dictionary.of_string dict2)
  in
  Format.printf "=== analysis of the merged dictionary ===@.";
  List.iter
    (fun issue -> Format.printf "  %s@." (Integrate.Analysis.to_string issue))
    (Integrate.Analysis.analyse ws);
  let ws =
    match
      Integrate.Workspace.assert_object
        (Qname.v "payroll" "emp")
        Integrate.Assertion.Equal
        (Qname.v "hr" "Employee")
        ws
    with
    | Ok ws -> ws
    | Error _ -> failwith "consistent by construction"
  in
  let result = Integrate.Workspace.integrate ~name:"global" ws in
  Format.printf "@.=== integrated schema ===@.%s@."
    (Ddl.Printer.to_string result.Integrate.Result.schema);

  (* The final dictionary records everything, for the next tool. *)
  let final = Dictionary.to_string ws in
  Format.printf "@.=== final dictionary (session section) ===@.";
  let after_marker = ref false in
  String.split_on_char '\n' final
  |> List.iter (fun line ->
         if !after_marker then Format.printf "%s@." line
         else if String.trim line = "%session" then after_marker := true)
