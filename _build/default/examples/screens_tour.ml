(* A scripted tour of the tool's screens.

   Drives the interactive driver (bin/sit) with a canned input script:
   defines a small schema through the Schema Collection screens, loads
   the paper's sc1/sc2, declares equivalences, enters assertions on the
   ranked pairs, and browses the integration result through the
   Figure 6 screen flow.  Everything printed is exactly what an
   interactive user would see.

   Run with: dune exec examples/screens_tour.exe *)

let script =
  [
    (* main menu: schema collection *)
    "1";
    (* add a schema named demo *)
    "a";
    "demo";
    (* add an entity Person with two attributes *)
    "a";
    "Person";
    "e";
    "a";
    "Ssn : char key";
    "a";
    "Name : char";
    "e";
    (* add a category Retiree of Person *)
    "a";
    "Retiree";
    "c";
    "Person";
    "a";
    "Pension : real";
    "e";
    (* add a relationship *)
    "a";
    "Knows";
    "r";
    "Person(0,N), Retiree(0,N)";
    "e";
    (* leave structure screen, leave schema collection *)
    "e";
    "e";
    (* main menu: exit *)
    "e";
  ]

let () =
  (* Part 1: schema collection screens, scripted. *)
  let io, buf = Tui.Session.scripted script in
  let ws = Tui.Session.run io in
  print_string (Buffer.contents buf);
  Format.printf "@.--- collected %d schema(s) ---@.@."
    (List.length (Integrate.Workspace.schemas ws));

  (* Part 2: the paper example end-to-end, then browse the result. *)
  let ws =
    Integrate.Workspace.(
      add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
  in
  let ws =
    List.fold_left
      (fun ws (a, b) -> Integrate.Workspace.declare_equivalent a b ws)
      ws Workload.Paper.equivalences
  in
  let ws =
    List.fold_left
      (fun ws (l, a, r) ->
        match Integrate.Workspace.assert_object l a r ws with
        | Ok ws -> ws
        | Error _ -> failwith "paper assertions are consistent")
      ws Workload.Paper.object_assertions
  in
  let ws =
    List.fold_left
      (fun ws (l, a, r) ->
        match Integrate.Workspace.assert_relationship l a r ws with
        | Ok ws -> ws
        | Error _ -> failwith "paper assertions are consistent")
      ws Workload.Paper.relationship_assertions
  in
  let ws = Integrate.Workspace.set_naming Workload.Paper.naming ws in
  let result = Integrate.Workspace.integrate ws in
  let tour =
    [
      "C Student" (* Category Screen for Student, as in Screen 11 *);
      "q";
      "A Student" (* Attribute Screen *);
      "D_GPA" (* its components, Screens 12a/12b *);
      "";
      "q";
      "E E_Department";
      "e" (* Equivalent Screen *);
      "R E_Stud_Majo";
      "p" (* Participating Objects *);
      "q";
      "q";
      "x";
    ]
  in
  let io, buf = Tui.Session.scripted tour in
  Tui.Session.view_result io
    ~schemas:[ Workload.Paper.sc1; Workload.Paper.sc2 ]
    result;
  print_string (Buffer.contents buf)
