(* Quickstart: the paper's own worked example, through the public API.

   Integrates schema sc1 (Figure 3) with schema sc2 (Figure 4) and
   prints everything the paper shows about the result: the ranked pair
   list with attribute ratios (Screen 8), the integrated schema
   (Figure 5 / Screen 10), and the component attributes of a derived
   attribute (Screens 12a/12b).

   Run with: dune exec examples/quickstart.exe *)

open Ecr

let () =
  (* Phase 1 — the component schemas (predefined; see lib/workload). *)
  let sc1 = Workload.Paper.sc1 and sc2 = Workload.Paper.sc2 in
  Format.printf "=== Component schemas ===@.%s@.%s@.@."
    (Ddl.Printer.to_string sc1) (Ddl.Printer.to_string sc2);

  (* Phase 2 — attribute equivalences, as the DDA declared them. *)
  let equivalence =
    List.fold_left
      (fun eq (a, b) -> Integrate.Equivalence.declare a b eq)
      (Integrate.Equivalence.register_schema sc2
         (Integrate.Equivalence.register_schema sc1 Integrate.Equivalence.empty))
      Workload.Paper.equivalences
  in

  (* The resemblance heuristic orders object pairs for review. *)
  Format.printf "=== Ranked object pairs (Screen 8) ===@.";
  List.iter
    (fun rk ->
      Format.printf "  %-20s %-20s ratio %.4f@."
        (Qname.to_string rk.Integrate.Similarity.left)
        (Qname.to_string rk.Integrate.Similarity.right)
        rk.Integrate.Similarity.ratio)
    (Integrate.Similarity.ranked_object_pairs sc1 sc2 equivalence);
  Format.printf "@.";

  (* Phases 3 and 4 — assertions, then integration. *)
  let result = Workload.Paper.integrate_sc1_sc2 () in
  Format.printf "=== Integrated schema (Figure 5) ===@.%s@.@."
    (Ddl.Printer.to_string result.Integrate.Result.schema);

  (* Derived attributes keep their provenance (Screens 12a/12b). *)
  Format.printf "=== Component attributes ===@.";
  List.iter
    (fun oc ->
      let cls = oc.Object_class.name in
      List.iter
        (fun a ->
          match
            Integrate.Result.components_of_attribute result cls
              a.Attribute.name
          with
          | [] | [ _ ] -> ()
          | comps ->
              Format.printf "  %s.%s merges %s@." (Name.to_string cls)
                (Name.to_string a.Attribute.name)
                (String.concat ", " (List.map Qname.Attr.to_string comps)))
        oc.Object_class.attributes)
    (Schema.objects result.Integrate.Result.schema);

  (* Mappings translate requests after integration. *)
  Format.printf "@.=== Generated mappings ===@.%a@." Integrate.Mapping.pp
    result.Integrate.Result.mapping
