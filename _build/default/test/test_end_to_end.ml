(* End-to-end tests of the interactive methodology and the integration
   strategies on generated workloads. *)

open Ecr
open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let workload seed =
  Workload.Generator.generate
    { Workload.Generator.default_params with seed; schemas = 2 }

let protocol_tests =
  [
    tc "protocol integrates a workload cleanly" (fun () ->
        let w = workload 11 in
        let result, stats = Protocol.run w.Workload.Generator.schemas w.Workload.Generator.oracle in
        check (Alcotest.list Alcotest.string) "valid" []
          (List.map Schema.error_to_string (Schema.validate result.Result.schema));
        check Alcotest.bool "some pairs presented" true (stats.Protocol.pairs_presented > 0));
    tc "derivation saves DDA questions" (fun () ->
        let w = workload 12 in
        let with_skip, s1 =
          Protocol.run ~options:{ Protocol.defaults with skip_determined = true }
            w.Workload.Generator.schemas w.Workload.Generator.oracle
        in
        let without_skip, s2 =
          Protocol.run ~options:{ Protocol.defaults with skip_determined = false }
            w.Workload.Generator.schemas w.Workload.Generator.oracle
        in
        ignore with_skip;
        ignore without_skip;
        check Alcotest.bool "skipping asks fewer" true
          (s1.Protocol.pairs_presented <= s2.Protocol.pairs_presented);
        check Alcotest.bool "something was derived" true
          (s1.Protocol.pairs_skipped_determined > 0));
    tc "exhaustive vs heuristic attribute questioning" (fun () ->
        let w = workload 13 in
        let count mode =
          let counters = Dda.fresh_counters () in
          let dda = Dda.counting counters w.Workload.Generator.oracle in
          let _ =
            Protocol.run
              ~options:{ Protocol.defaults with exhaustive_attribute_pairs = mode }
              w.Workload.Generator.schemas dda
          in
          counters.Dda.attr_questions
        in
        let exhaustive = count true and heuristic = count false in
        check Alcotest.bool "heuristic filters questions" true
          (heuristic < exhaustive));
    tc "max_object_pairs caps the review effort" (fun () ->
        let w = workload 14 in
        match w.Workload.Generator.schemas with
        | [ s1; s2 ] ->
            let eq =
              Protocol.collect_equivalences Protocol.defaults s1 s2
                w.Workload.Generator.oracle Equivalence.empty
            in
            let _, stats =
              Protocol.collect_object_assertions
                { Protocol.defaults with
                  max_object_pairs = Some 3;
                  skip_determined = false
                }
                s1 s2 w.Workload.Generator.oracle eq
                (Assertions.create w.Workload.Generator.schemas)
            in
            check Alcotest.bool "capped" true (stats.Protocol.pairs_presented <= 3)
        | _ -> Alcotest.fail "expected two schemas");
    tc "erroneous oracle triggers conflict handling" (fun () ->
        (* an oracle that contradicts itself: claims equal on the first
           question and disjoint on a later one about classes known (by
           derivation) to be equal *)
        let s1 =
          Schema.make (Name.v "a")
            ~objects:[ Object_class.entity (Name.v "X") ]
            ~relationships:[]
        and s2 =
          Schema.make (Name.v "b")
            ~objects:[ Object_class.entity (Name.v "X") ]
            ~relationships:[]
        and s3 =
          Schema.make (Name.v "c")
            ~objects:[ Object_class.entity (Name.v "X") ]
            ~relationships:[]
        in
        let answers = ref 0 in
        let dda =
          {
            Dda.silent with
            Dda.object_assertion =
              (fun _ _ ->
                incr answers;
                if !answers <= 2 then Some Assertion.Equal
                else Some Assertion.Disjoint_nonintegrable);
          }
        in
        let _, stats = Protocol.run [ s1; s2; s3 ] dda in
        check Alcotest.bool "a conflicting answer was rejected" true
          (stats.Protocol.assertions_rejected >= 1 || stats.Protocol.pairs_skipped_determined >= 1));
  ]

let strategy_tests =
  [
    tc "n-ary and binary-ladder produce valid schemas" (fun () ->
        let w =
          Workload.Generator.generate
            { Workload.Generator.default_params with seed = 21; schemas = 4 }
        in
        let nary = Strategy.nary w.Workload.Generator.schemas w.Workload.Generator.oracle in
        check (Alcotest.list Alcotest.string) "nary valid" []
          (List.map Schema.error_to_string (Schema.validate nary.Strategy.result.Result.schema));
        check Alcotest.int "one step" 1 nary.Strategy.steps;
        let ladder =
          Strategy.binary_ladder ~register:w.Workload.Generator.register
            w.Workload.Generator.schemas w.Workload.Generator.oracle
        in
        check (Alcotest.list Alcotest.string) "ladder valid" []
          (List.map Schema.error_to_string
             (Schema.validate ladder.Strategy.result.Result.schema));
        check Alcotest.int "three steps for four schemas" 3 ladder.Strategy.steps);
    tc "binary balanced halves the pool" (fun () ->
        let w =
          Workload.Generator.generate
            { Workload.Generator.default_params with seed = 22; schemas = 4 }
        in
        let balanced =
          Strategy.binary_balanced ~register:w.Workload.Generator.register
            w.Workload.Generator.schemas w.Workload.Generator.oracle
        in
        check Alcotest.int "three steps" 3 balanced.Strategy.steps;
        check (Alcotest.list Alcotest.string) "valid" []
          (List.map Schema.error_to_string
             (Schema.validate balanced.Strategy.result.Result.schema)));
    tc "similarity-guided binary works" (fun () ->
        let w =
          Workload.Generator.generate
            { Workload.Generator.default_params with seed = 23; schemas = 3 }
        in
        let guided =
          Strategy.binary_guided ~register:w.Workload.Generator.register
            ~weights:(Heuristics.Resemblance.default_weights Heuristics.Synonyms.default)
            w.Workload.Generator.schemas w.Workload.Generator.oracle
        in
        check Alcotest.int "two steps" 2 guided.Strategy.steps;
        check (Alcotest.list Alcotest.string) "valid" []
          (List.map Schema.error_to_string
             (Schema.validate guided.Strategy.result.Result.schema)));
    tc "single schema degenerates gracefully" (fun () ->
        let w = workload 24 in
        let only = [ List.hd w.Workload.Generator.schemas ] in
        let out = Strategy.binary_ladder only w.Workload.Generator.oracle in
        check Alcotest.int "zero steps" 0 out.Strategy.steps);
  ]

let batch_tool_tests =
  [
    tc "workspace sessions reproduce Figure 5 from DDL text" (fun () ->
        (* the same pipeline bin/sit_batch drives: parse DDL, record the
           session in a workspace, integrate *)
        let schemas =
          Ddl.Parser.schemas_of_string
            (Ddl.Printer.schemas_to_string [ Workload.Paper.sc1; Workload.Paper.sc2 ])
        in
        let ws =
          List.fold_left (fun ws s -> Workspace.add_schema s ws) Workspace.empty schemas
        in
        let ws =
          List.fold_left
            (fun ws (a, b) -> Workspace.declare_equivalent a b ws)
            ws Workload.Paper.equivalences
        in
        let ws =
          List.fold_left
            (fun ws (l, a, r) ->
              match Workspace.assert_object l a r ws with
              | Ok ws -> ws
              | Error _ -> Alcotest.fail "paper session conflicts")
            ws Workload.Paper.object_assertions
        in
        let ws =
          List.fold_left
            (fun ws (l, a, r) ->
              match Workspace.assert_relationship l a r ws with
              | Ok ws -> ws
              | Error _ -> Alcotest.fail "paper session conflicts")
            ws Workload.Paper.relationship_assertions
        in
        let ws = Workspace.set_naming Workload.Paper.naming ws in
        let result = Workspace.integrate ws in
        check (Alcotest.slist Alcotest.string String.compare) "figure 5 classes"
          [ "E_Department"; "D_Stud_Facu"; "Student"; "Grad_student"; "Faculty" ]
          (List.map
             (fun oc -> Name.to_string oc.Object_class.name)
             (Schema.objects result.Result.schema)));
    tc "workspace retract and re-assert" (fun () ->
        let ws =
          Workspace.(add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
        in
        let q = Qname.v in
        let ws =
          match
            Workspace.assert_object (q "sc1" "Student") Assertion.Equal
              (q "sc2" "Faculty") ws
          with
          | Ok ws -> ws
          | Error _ -> Alcotest.fail "fresh assertion is consistent"
        in
        let ws = Workspace.retract_object (q "sc1" "Student") (q "sc2" "Faculty") ws in
        check Alcotest.int "no facts left" 0 (List.length (Workspace.object_facts ws));
        match
          Workspace.assert_object (q "sc1" "Student") Assertion.Disjoint_nonintegrable
            (q "sc2" "Faculty") ws
        with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "retraction should free the pair");
    tc "removing a schema drops its facts and equivalences" (fun () ->
        let ws =
          Workspace.(add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
        in
        let ws =
          List.fold_left
            (fun ws (a, b) -> Workspace.declare_equivalent a b ws)
            ws Workload.Paper.equivalences
        in
        let ws = Workspace.remove_schema (Name.v "sc2") ws in
        check Alcotest.int "one schema" 1 (List.length (Workspace.schemas ws));
        check Alcotest.bool "no sc2 attrs" true
          (List.for_all
             (fun qa -> Name.to_string qa.Qname.Attr.owner.Qname.schema <> "sc2")
             (Equivalence.members (Workspace.equivalence ws))));
  ]

let () =
  Alcotest.run "end-to-end"
    [
      ("protocol", protocol_tests);
      ("strategies", strategy_tests);
      ("batch", batch_tool_tests);
    ]
