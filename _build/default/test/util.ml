(* Shared helpers for the test suites. *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec find i = i + n <= h && (String.sub haystack i n = needle || find (i + 1)) in
  find 0
