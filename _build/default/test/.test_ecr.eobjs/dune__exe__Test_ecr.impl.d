test/test_ecr.ml: Alcotest Attribute Cardinality Diff Domain Dot Ecr Fmt List Name Object_class Qname Relationship Result Schema String
