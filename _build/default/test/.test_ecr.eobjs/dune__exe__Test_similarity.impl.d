test/test_similarity.ml: Alcotest Ecr Equivalence Integrate List Name Option Qname Schema Similarity Workload
