test/test_assertions.ml: Alcotest Assertion Assertions Ecr Fmt Integrate List Name Object_class Qname Rel Schema Workload
