test/test_equivalence.ml: Alcotest Ecr Equivalence Integrate List Name Qname Workload
