test/test_parser.ml: Alcotest Ecr Instance Integrate List Name Object_class Qname Query Schema Workload
