test/test_heuristics.ml: Alcotest Construct Ecr Float Heuristics List Option Resemblance Schema_resemblance Strings Synonyms Workload
