test/util.ml: String
