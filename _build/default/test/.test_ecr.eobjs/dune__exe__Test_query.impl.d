test/test_query.ml: Alcotest Ecr Instance Integrate Lazy List Name Option Qname Query String Workload
