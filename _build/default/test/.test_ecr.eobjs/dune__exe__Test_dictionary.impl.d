test/test_dictionary.ml: Alcotest Dictionary Ecr Equivalence Filename Fun Integrate List Name Option Qname Query Result Schema Sys Util Workload Workspace
