test/test_misc.ml: Alcotest Cardinality Dot Ecr Instance Integrate List Name Option Qname Relationship Schema Tui Util Workload
