test/test_end_to_end.ml: Alcotest Assertion Assertions Dda Ddl Ecr Equivalence Heuristics Integrate List Name Object_class Protocol Qname Result Schema Strategy String Workload Workspace
