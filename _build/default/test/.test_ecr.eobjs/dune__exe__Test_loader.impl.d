test/test_loader.ml: Alcotest Ecr Instance Integrate List Name Option Query Util Workload
