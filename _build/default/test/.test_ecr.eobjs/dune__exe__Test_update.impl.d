test/test_update.ml: Alcotest Ecr Instance Integrate List Name Query Util Workload
