test/test_translate.ml: Alcotest Attribute Cardinality Ecr Integrate List Name Object_class Qname Relationship Schema Translate
