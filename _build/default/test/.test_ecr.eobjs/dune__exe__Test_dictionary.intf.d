test/test_dictionary.mli:
