test/test_analysis.ml: Alcotest Analysis Assertion Attribute Cardinality Ecr Integrate List Name Object_class Qname Relationship Schema Util Workload Workspace
