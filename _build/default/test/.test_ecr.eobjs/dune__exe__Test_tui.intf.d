test/test_tui.mli:
