test/test_rel.ml: Alcotest Assertion Fmt Hashtbl Int Integrate List Printf Rel
