test/test_ecr.mli:
