test/test_tui.ml: Alcotest Buffer Ecr Integrate Lazy List Printf String Tui Util Workload
