test/test_ddl.ml: Alcotest Attribute Cardinality Ddl Domain Ecr Filename Fmt Fun Integrate List Name Object_class Option Relationship Schema Sys Util Workload
