test/test_lattice.ml: Alcotest Assertion Assertions Attribute Domain Ecr Equivalence Integrate Lattice List Name Naming Object_class Qname Result Schema String Workload
