test/test_instance.ml: Alcotest Attribute Cardinality Domain Ecr Instance List Name Object_class Relationship Schema String Util
