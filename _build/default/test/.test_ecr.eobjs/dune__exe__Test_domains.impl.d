test/test_domains.ml: Alcotest Ecr Integrate Lazy List Name Object_class Qname Schema String Workload
