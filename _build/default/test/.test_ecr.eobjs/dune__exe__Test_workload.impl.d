test/test_workload.ml: Alcotest Attribute Ecr Fun Instance Integrate Lazy List Name Object_class Qname Schema String Workload
