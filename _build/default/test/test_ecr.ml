(* Unit tests for the ECR model library. *)

open Ecr

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Name.                                                               *)

let name_tests =
  [
    tc "valid identifiers accepted" (fun () ->
        List.iter
          (fun s -> check Alcotest.string s s (Name.to_string (Name.v s)))
          [ "Student"; "_x"; "a1_b2"; "E_Department"; "x" ]);
    tc "invalid identifiers rejected" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool ("rejects " ^ s) false (Name.is_valid s))
          [ ""; "1abc"; "has space"; "dot.ted"; "hy-phen"; "é" ]);
    tc "of_string raises Invalid" (fun () ->
        Alcotest.check_raises "empty" (Name.Invalid "") (fun () ->
            ignore (Name.of_string "")));
    tc "of_string_opt returns None" (fun () ->
        check Alcotest.bool "none" true (Name.of_string_opt "9x" = None));
    tc "case-sensitive equality" (fun () ->
        check Alcotest.bool "Student <> student" false
          (Name.equal (Name.v "Student") (Name.v "student"));
        check Alcotest.bool "equal_ci" true
          (Name.equal_ci (Name.v "Student") (Name.v "student")));
    tc "abbreviate" (fun () ->
        check Alcotest.string "4 chars" "Stud" (Name.abbreviate 4 (Name.v "Student"));
        check Alcotest.string "short stays" "GPA" (Name.abbreviate 4 (Name.v "GPA")));
    tc "concat" (fun () ->
        check Alcotest.string "default sep" "a_b"
          (Name.to_string (Name.concat (Name.v "a") (Name.v "b"))));
    tc "set and map work" (fun () ->
        let s = Name.Set.of_list [ Name.v "a"; Name.v "b"; Name.v "a" ] in
        check Alcotest.int "dedup" 2 (Name.Set.cardinal s));
  ]

(* ------------------------------------------------------------------ *)
(* Qname.                                                              *)

let qname_tests =
  [
    tc "to_string and of_string" (fun () ->
        let q = Qname.v "sc1" "Student" in
        check Alcotest.string "dot" "sc1.Student" (Qname.to_string q);
        check Alcotest.bool "round" true
          (Qname.equal q (Qname.of_string "sc1.Student")));
    tc "of_string rejects bare name" (fun () ->
        Alcotest.check_raises "no dot" (Name.Invalid "Student") (fun () ->
            ignore (Qname.of_string "Student")));
    tc "attr to_string" (fun () ->
        check Alcotest.string "three parts" "sc1.Student.Name"
          (Qname.Attr.to_string (Qname.Attr.v "sc1" "Student" "Name")));
    tc "pair is unordered" (fun () ->
        let a = Qname.v "sc1" "A" and b = Qname.v "sc2" "B" in
        check Alcotest.bool "symmetric" true
          (Qname.Pair.equal (Qname.Pair.make a b) (Qname.Pair.make b a)));
    tc "pair orientation reporting" (fun () ->
        let a = Qname.v "sc1" "A" and b = Qname.v "sc2" "B" in
        check Alcotest.bool "a<=b not flipped" false (Qname.Pair.flipped a b);
        check Alcotest.bool "b>a flipped" true (Qname.Pair.flipped b a));
    tc "pair other and mem" (fun () ->
        let a = Qname.v "sc1" "A" and b = Qname.v "sc2" "B" in
        let p = Qname.Pair.make b a in
        check Alcotest.bool "mem" true (Qname.Pair.mem a p);
        check Alcotest.bool "other" true (Qname.equal b (Qname.Pair.other p a));
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Qname.Pair.other p (Qname.v "x" "y"))));
  ]

(* ------------------------------------------------------------------ *)
(* Domain.                                                             *)

let domain_tests =
  [
    tc "parse and print" (fun () ->
        List.iter
          (fun (s, expect) ->
            check Alcotest.string s expect (Domain.to_string (Domain.of_string s)))
          [
            ("char", "char");
            ("string", "char");
            ("int", "int");
            ("integer", "int");
            ("real", "real");
            ("float", "real");
            ("bool", "bool");
            ("date", "date");
            ("enum(a,b)", "enum(a,b)");
            ("Money", "Money");
          ]);
    tc "enum values normalised" (fun () ->
        check Alcotest.bool "order-insensitive" true
          (Domain.equal (Domain.of_string "enum(b,a)") (Domain.of_string "enum(a,b)")));
    tc "compatibility" (fun () ->
        check Alcotest.bool "int~real" true
          (Domain.compatible Domain.Integer Domain.Real);
        check Alcotest.bool "char!~int" false
          (Domain.compatible Domain.Char_string Domain.Integer);
        check Alcotest.bool "enum subset" true
          (Domain.compatible (Domain.Enum [ "a" ]) (Domain.Enum [ "a"; "b" ]));
        check Alcotest.bool "enum disjoint" false
          (Domain.compatible (Domain.Enum [ "a" ]) (Domain.Enum [ "b" ])));
    tc "join" (fun () ->
        check Alcotest.bool "int+real=real" true
          (Domain.join Domain.Integer Domain.Real = Some Domain.Real);
        check Alcotest.bool "incompatible" true
          (Domain.join Domain.Boolean Domain.Date = None);
        check Alcotest.bool "enum union" true
          (Domain.join (Domain.Enum [ "a" ]) (Domain.Enum [ "a"; "b" ])
          = Some (Domain.Enum [ "a"; "b" ])));
    tc "named domains compare by name" (fun () ->
        check Alcotest.bool "same" true
          (Domain.equal (Domain.of_string "Money") (Domain.of_string "Money"));
        check Alcotest.bool "diff" false
          (Domain.compatible (Domain.of_string "Money") (Domain.of_string "Weight")));
  ]

(* ------------------------------------------------------------------ *)
(* Cardinality.                                                        *)

let card = Alcotest.testable (Fmt.of_to_string Cardinality.to_string) Cardinality.equal

let cardinality_tests =
  [
    tc "constructors" (fun () ->
        check Alcotest.string "11" "(1,1)" (Cardinality.to_string Cardinality.exactly_one);
        check Alcotest.string "0N" "(0,N)" (Cardinality.to_string Cardinality.any));
    tc "make validates" (fun () ->
        Alcotest.check_raises "negative min"
          (Cardinality.Invalid "negative minimum -1") (fun () ->
            ignore (Cardinality.make (-1) Cardinality.Many));
        Alcotest.check_raises "max zero"
          (Cardinality.Invalid "bad maximum for (0,0)") (fun () ->
            ignore (Cardinality.make 0 (Cardinality.Finite 0)));
        Alcotest.check_raises "min above max"
          (Cardinality.Invalid "bad maximum for (3,2)") (fun () ->
            ignore (Cardinality.make 3 (Cardinality.Finite 2))));
    tc "of_string" (fun () ->
        check card "1N" Cardinality.at_least_one (Cardinality.of_string "(1,N)");
        check card "02" (Cardinality.make 0 (Cardinality.Finite 2))
          (Cardinality.of_string "( 0 , 2 )");
        Alcotest.check_raises "garbage" (Cardinality.Invalid "x") (fun () ->
            ignore (Cardinality.of_string "x")));
    tc "union and intersect" (fun () ->
        check card "union" Cardinality.any
          (Cardinality.union Cardinality.exactly_one Cardinality.any);
        check card "inter" Cardinality.exactly_one
          (match Cardinality.intersect Cardinality.at_least_one Cardinality.at_most_one with
          | Some c -> c
          | None -> Alcotest.fail "expected intersection");
        check Alcotest.bool "empty inter" true
          (Cardinality.intersect
             (Cardinality.make 2 (Cardinality.Finite 2))
             Cardinality.at_most_one
          = None));
    tc "includes and satisfied" (fun () ->
        check Alcotest.bool "any includes 11" true
          (Cardinality.includes Cardinality.any Cardinality.exactly_one);
        check Alcotest.bool "11 not include any" false
          (Cardinality.includes Cardinality.exactly_one Cardinality.any);
        check Alcotest.bool "k=0 vs (1,N)" false
          (Cardinality.satisfied 0 Cardinality.at_least_one);
        check Alcotest.bool "k=5 vs (0,N)" true
          (Cardinality.satisfied 5 Cardinality.any));
    tc "total and functional" (fun () ->
        check Alcotest.bool "total" true (Cardinality.total Cardinality.exactly_one);
        check Alcotest.bool "functional" true
          (Cardinality.functional Cardinality.at_most_one);
        check Alcotest.bool "not functional" false
          (Cardinality.functional Cardinality.any));
  ]

(* ------------------------------------------------------------------ *)
(* Attribute / Object_class / Relationship.                            *)

let structure_tests =
  [
    tc "attribute well_formed" (fun () ->
        let attrs = [ Attribute.v "a" "char"; Attribute.v "a" "int" ] in
        check Alcotest.bool "dup detected" true (Attribute.well_formed attrs |> Result.is_error);
        check Alcotest.bool "ok" true
          (Attribute.well_formed [ Attribute.v "a" "char"; Attribute.v "b" "char" ]
          |> Result.is_ok));
    tc "attribute keys and find" (fun () ->
        let attrs = [ Attribute.v ~key:true "k" "char"; Attribute.v "x" "int" ] in
        check Alcotest.int "one key" 1 (List.length (Attribute.keys attrs));
        check Alcotest.bool "find" true (Attribute.find (Name.v "x") attrs <> None);
        check Alcotest.bool "find missing" true (Attribute.find (Name.v "y") attrs = None));
    tc "object class kinds" (fun () ->
        let e = Object_class.entity (Name.v "E") in
        let c = Object_class.category ~parents:[ Name.v "E" ] (Name.v "C") in
        check Alcotest.bool "entity" true (Object_class.is_entity e);
        check Alcotest.bool "category" true (Object_class.is_category c);
        check Alcotest.char "letters e" 'e' (Object_class.kind_letter e);
        check Alcotest.char "letters c" 'c' (Object_class.kind_letter c);
        check Alcotest.int "parents" 1 (List.length (Object_class.parents c));
        check Alcotest.int "no parents" 0 (List.length (Object_class.parents e)));
    tc "relationship participants" (fun () ->
        let r =
          Relationship.binary (Name.v "R")
            (Name.v "A", Cardinality.exactly_one)
            (Name.v "B", Cardinality.any)
        in
        check Alcotest.int "arity" 2 (Relationship.arity r);
        check Alcotest.bool "participates" true (Relationship.participates (Name.v "A") r);
        check Alcotest.bool "not" false (Relationship.participates (Name.v "C") r));
    tc "roles disambiguate repeated participants" (fun () ->
        let r =
          Relationship.make (Name.v "Supervises")
            [
              Relationship.participant ~role:(Name.v "boss") (Name.v "Emp")
                Cardinality.any;
              Relationship.participant ~role:(Name.v "minion") (Name.v "Emp")
                Cardinality.at_most_one;
            ]
        in
        match Relationship.participant_for ~role:(Name.v "minion") (Name.v "Emp") r with
        | Some p ->
            check Alcotest.bool "card" true
              (Cardinality.equal p.Relationship.card Cardinality.at_most_one)
        | None -> Alcotest.fail "role lookup failed");
    tc "rename participant" (fun () ->
        let r =
          Relationship.binary (Name.v "R")
            (Name.v "A", Cardinality.any)
            (Name.v "B", Cardinality.any)
        in
        let r' = Relationship.rename_participant (Name.v "A") (Name.v "Z") r in
        check Alcotest.bool "renamed" true (Relationship.participates (Name.v "Z") r');
        check Alcotest.bool "gone" false (Relationship.participates (Name.v "A") r'));
  ]

(* ------------------------------------------------------------------ *)
(* Schema.                                                             *)

let diamond =
  (* Person <- Employee <- Manager, Person <- Student, Manager also <- Student
     (diamond-ish lattice for ancestor tests) *)
  Schema.make (Name.v "s")
    ~objects:
      [
        Object_class.entity
          ~attrs:[ Attribute.v ~key:true "Ssn" "char"; Attribute.v "Name" "char" ]
          (Name.v "Person");
        Object_class.category
          ~attrs:[ Attribute.v "Salary" "real" ]
          ~parents:[ Name.v "Person" ] (Name.v "Employee");
        Object_class.category
          ~attrs:[ Attribute.v "GPA" "real" ]
          ~parents:[ Name.v "Person" ] (Name.v "Student");
        Object_class.category
          ~attrs:[ Attribute.v "Stipend" "real" ]
          ~parents:[ Name.v "Employee"; Name.v "Student" ]
          (Name.v "Working_student");
      ]
    ~relationships:
      [
        Relationship.binary (Name.v "Mentors")
          (Name.v "Employee", Cardinality.any)
          (Name.v "Student", Cardinality.at_most_one);
      ]

let schema_tests =
  [
    tc "make rejects duplicates" (fun () ->
        Alcotest.check_raises "dup" (Invalid_argument "Schema: duplicate structure X")
          (fun () ->
            ignore
              (Schema.make (Name.v "s")
                 ~objects:
                   [ Object_class.entity (Name.v "X"); Object_class.entity (Name.v "X") ]
                 ~relationships:[])));
    tc "namespace is shared with relationships" (fun () ->
        Alcotest.check_raises "obj/rel clash"
          (Invalid_argument "Schema: duplicate structure X") (fun () ->
            ignore
              (Schema.make (Name.v "s")
                 ~objects:[ Object_class.entity (Name.v "X") ]
                 ~relationships:
                   [
                     Relationship.binary (Name.v "X")
                       (Name.v "X", Cardinality.any)
                       (Name.v "X", Cardinality.any);
                   ])));
    tc "lookup" (fun () ->
        check Alcotest.bool "object" true (Schema.find_object (Name.v "Person") diamond <> None);
        check Alcotest.bool "relationship" true
          (Schema.find_relationship (Name.v "Mentors") diamond <> None);
        check Alcotest.bool "crossed lookups are None" true
          (Schema.find_object (Name.v "Mentors") diamond = None);
        check Alcotest.int "size" 5 (Schema.size diamond));
    tc "children / ancestors / descendants" (fun () ->
        check (Alcotest.list Alcotest.string) "children of Person"
          [ "Employee"; "Student" ]
          (List.map Name.to_string (Schema.children diamond (Name.v "Person")));
        check (Alcotest.slist Alcotest.string String.compare) "ancestors of WS"
          [ "Employee"; "Student"; "Person" ]
          (List.map Name.to_string (Schema.ancestors diamond (Name.v "Working_student")));
        check (Alcotest.slist Alcotest.string String.compare) "descendants of Person"
          [ "Employee"; "Student"; "Working_student" ]
          (List.map Name.to_string (Schema.descendants diamond (Name.v "Person")));
        check Alcotest.bool "is_ancestor" true
          (Schema.is_ancestor diamond ~ancestor:(Name.v "Person") (Name.v "Working_student")));
    tc "all_attributes inherits through the diamond once" (fun () ->
        let attrs = Schema.all_attributes diamond (Name.v "Working_student") in
        check (Alcotest.slist Alcotest.string String.compare) "inherited"
          [ "Stipend"; "Salary"; "GPA"; "Ssn"; "Name" ]
          (List.map (fun a -> Name.to_string a.Attribute.name) attrs));
    tc "all_attributes unknown class raises" (fun () ->
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Schema.all_attributes diamond (Name.v "Nobody"))));
    tc "roots and entities" (fun () ->
        check Alcotest.int "roots" 1 (List.length (Schema.roots diamond));
        check Alcotest.int "entities" 1 (List.length (Schema.entities diamond));
        check Alcotest.int "categories" 3 (List.length (Schema.categories diamond)));
    tc "relationships_of" (fun () ->
        check Alcotest.int "employee has 1" 1
          (List.length (Schema.relationships_of diamond (Name.v "Employee"))));
    tc "remove_structure leaves danglers for validate" (fun () ->
        let s = Schema.remove_structure (Name.v "Person") diamond in
        let errors = Schema.validate s in
        check Alcotest.bool "unknown parent reported" true
          (List.exists
             (function Schema.Unknown_parent _ -> true | _ -> false)
             errors));
    tc "validate: clean schema" (fun () ->
        check (Alcotest.list Alcotest.string) "no errors" []
          (List.map Schema.error_to_string (Schema.validate diamond)));
    tc "validate: category without parent" (fun () ->
        let s =
          Schema.make (Name.v "s")
            ~objects:[ Object_class.category ~parents:[] (Name.v "C") ]
            ~relationships:[]
        in
        check Alcotest.bool "reported" true
          (List.exists
             (function Schema.Category_without_parent _ -> true | _ -> false)
             (Schema.validate s)));
    tc "validate: cyclic categories" (fun () ->
        let s =
          Schema.make (Name.v "s")
            ~objects:
              [
                Object_class.category ~parents:[ Name.v "B" ] (Name.v "A");
                Object_class.category ~parents:[ Name.v "A" ] (Name.v "B");
              ]
            ~relationships:[]
        in
        check Alcotest.bool "cycle" true
          (List.exists
             (function Schema.Cyclic_categories _ -> true | _ -> false)
             (Schema.validate s)));
    tc "validate: relationship arity" (fun () ->
        let s =
          Schema.make (Name.v "s")
            ~objects:[ Object_class.entity (Name.v "A") ]
            ~relationships:
              [
                Relationship.make (Name.v "R")
                  [ Relationship.participant (Name.v "A") Cardinality.any ];
              ]
        in
        check Alcotest.bool "arity" true
          (List.exists
             (function Schema.Relationship_arity _ -> true | _ -> false)
             (Schema.validate s)));
    tc "validate: unknown participant" (fun () ->
        let s =
          Schema.make (Name.v "s")
            ~objects:[ Object_class.entity (Name.v "A") ]
            ~relationships:
              [
                Relationship.binary (Name.v "R")
                  (Name.v "A", Cardinality.any)
                  (Name.v "Ghost", Cardinality.any);
              ]
        in
        check Alcotest.bool "unknown" true
          (List.exists
             (function Schema.Unknown_participant _ -> true | _ -> false)
             (Schema.validate s)));
    tc "validate: ambiguous repeated participant" (fun () ->
        let s =
          Schema.make (Name.v "s")
            ~objects:[ Object_class.entity (Name.v "A") ]
            ~relationships:
              [
                Relationship.binary (Name.v "R")
                  (Name.v "A", Cardinality.any)
                  (Name.v "A", Cardinality.any);
              ]
        in
        check Alcotest.bool "ambiguous" true
          (List.exists
             (function Schema.Ambiguous_roles _ -> true | _ -> false)
             (Schema.validate s)));
    tc "validate: roles fix repeated participant" (fun () ->
        let s =
          Schema.make (Name.v "s")
            ~objects:[ Object_class.entity (Name.v "A") ]
            ~relationships:
              [
                Relationship.make (Name.v "R")
                  [
                    Relationship.participant ~role:(Name.v "x") (Name.v "A")
                      Cardinality.any;
                    Relationship.participant ~role:(Name.v "y") (Name.v "A")
                      Cardinality.any;
                  ];
              ]
        in
        check (Alcotest.list Alcotest.string) "clean" []
          (List.map Schema.error_to_string (Schema.validate s)));
    tc "validate: duplicate attribute" (fun () ->
        let s =
          Schema.make (Name.v "s")
            ~objects:
              [
                Object_class.entity
                  ~attrs:[ Attribute.v "a" "char"; Attribute.v "a" "int" ]
                  (Name.v "X");
              ]
            ~relationships:[]
        in
        check Alcotest.bool "dup attr" true
          (List.exists
             (function Schema.Duplicate_attribute _ -> true | _ -> false)
             (Schema.validate s)));
    tc "validate: incompatible shadowing" (fun () ->
        let s =
          Schema.make (Name.v "s")
            ~objects:
              [
                Object_class.entity
                  ~attrs:[ Attribute.v "Name" "char" ]
                  (Name.v "P");
                Object_class.category
                  ~attrs:[ Attribute.v "Name" "int" ]
                  ~parents:[ Name.v "P" ] (Name.v "C");
              ]
            ~relationships:[]
        in
        check Alcotest.bool "shadow" true
          (List.exists
             (function Schema.Attribute_shadows_inherited _ -> true | _ -> false)
             (Schema.validate s)));
    tc "replace_object updates in place" (fun () ->
        let s =
          Schema.replace_object
            (Object_class.entity ~attrs:[ Attribute.v "x" "int" ] (Name.v "Person"))
            diamond
        in
        match Schema.find_object (Name.v "Person") s with
        | Some oc -> check Alcotest.int "new attrs" 1 (List.length oc.Object_class.attributes)
        | None -> Alcotest.fail "lost Person");
  ]

(* ------------------------------------------------------------------ *)
(* Diff and Dot.                                                       *)

let diff_tests =
  [
    tc "diff empty on equal" (fun () ->
        check Alcotest.bool "empty" true (Diff.is_empty (Diff.diff diamond diamond)));
    tc "diff detects add/remove/change" (fun () ->
        let s2 =
          diamond
          |> Schema.remove_structure (Name.v "Mentors")
          |> Schema.add_object (Object_class.entity (Name.v "Course"))
          |> Schema.replace_object
               (Object_class.entity ~attrs:[ Attribute.v "z" "int" ] (Name.v "Person"))
        in
        let changes = Diff.diff diamond s2 in
        let kinds =
          List.map
            (function
              | Diff.Added _ -> "added"
              | Diff.Removed _ -> "removed"
              | Diff.Changed _ -> "changed")
            changes
        in
        check (Alcotest.slist Alcotest.string String.compare) "kinds"
          [ "added"; "removed"; "changed" ] kinds);
    tc "dot output mentions every structure" (fun () ->
        let dot = Dot.to_dot diamond in
        List.iter
          (fun n ->
            check Alcotest.bool ("mentions " ^ n) true
              (let rec find i =
                 i + String.length n <= String.length dot
                 && (String.sub dot i (String.length n) = n || find (i + 1))
               in
               find 0))
          [ "Person"; "Employee"; "Mentors"; "isa" ]);
  ]

let () =
  Alcotest.run "ecr"
    [
      ("name", name_tests);
      ("qname", qname_tests);
      ("domain", domain_tests);
      ("cardinality", cardinality_tests);
      ("structures", structure_tests);
      ("schema", schema_tests);
      ("diff-dot", diff_tests);
    ]
