(* Tests for the data dictionary (workspace persistence). *)

open Ecr
open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let paper_workspace () =
  let ws =
    Workspace.(add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
  in
  let ws =
    List.fold_left
      (fun ws (a, b) -> Workspace.declare_equivalent a b ws)
      ws Workload.Paper.equivalences
  in
  let ws =
    List.fold_left
      (fun ws (l, a, r) ->
        match Workspace.assert_object l a r ws with
        | Ok ws -> ws
        | Error _ -> Alcotest.fail "paper session conflicts")
      ws Workload.Paper.object_assertions
  in
  let ws =
    List.fold_left
      (fun ws (l, a, r) ->
        match Workspace.assert_relationship l a r ws with
        | Ok ws -> ws
        | Error _ -> Alcotest.fail "paper session conflicts")
      ws Workload.Paper.relationship_assertions
  in
  Workspace.set_naming Workload.Paper.naming ws

let tests =
  [
    tc "round-trip preserves the whole session" (fun () ->
        let ws = paper_workspace () in
        let ws' = Dictionary.of_string (Dictionary.to_string ws) in
        check Alcotest.int "schemas" 2 (List.length (Workspace.schemas ws'));
        check Alcotest.int "object facts" 3
          (List.length (Workspace.object_facts ws'));
        check Alcotest.int "relationship facts" 1
          (List.length (Workspace.relationship_facts ws'));
        check Alcotest.int "equivalence classes" 4
          (List.length
             (Equivalence.nontrivial_classes (Workspace.equivalence ws'))));
    tc "round-trip reproduces the integration result" (fun () ->
        let ws = paper_workspace () in
        let ws' = Dictionary.of_string (Dictionary.to_string ws) in
        let r = Workspace.integrate ws and r' = Workspace.integrate ws' in
        check Alcotest.bool "same integrated schema" true
          (Schema.equal r.Result.schema r'.Result.schema));
    tc "naming overrides survive" (fun () ->
        let ws = paper_workspace () in
        let ws' = Dictionary.of_string (Dictionary.to_string ws) in
        let r' = Workspace.integrate ws' in
        check Alcotest.bool "E_Stud_Majo pinned" true
          (Schema.mem (Name.v "E_Stud_Majo") r'.Result.schema));
    tc "file round-trip" (fun () ->
        let path = Filename.temp_file "sit" ".sitd" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Dictionary.save path (paper_workspace ());
            let ws = Dictionary.load path in
            check Alcotest.int "schemas" 2 (List.length (Workspace.schemas ws))));
    tc "comments and blank lines tolerated" (fun () ->
        let text =
          "schema a { entity X; }\n%session\n\n# a comment\n"
        in
        let ws = Dictionary.of_string text in
        check Alcotest.int "one schema" 1 (List.length (Workspace.schemas ws)));
    tc "missing session marker means schemas only" (fun () ->
        let ws = Dictionary.of_string "schema a { entity X; }\n" in
        check Alcotest.int "one schema" 1 (List.length (Workspace.schemas ws));
        check Alcotest.int "no facts" 0 (List.length (Workspace.object_facts ws)));
    tc "inconsistent dictionaries are rejected" (fun () ->
        let text =
          "schema a { entity X; }\nschema b { entity Y; }\nschema c { entity \
           Z; }\n%session\nobject a.X 1 b.Y\nobject b.Y 1 c.Z\nobject a.X 0 \
           c.Z\n"
        in
        match Dictionary.of_string text with
        | exception Dictionary.Error msg ->
            check Alcotest.bool "mentions conflict" true
              (Util.contains ~needle:"conflict" msg)
        | _ -> Alcotest.fail "expected rejection");
    tc "syntax errors carry the line" (fun () ->
        match Dictionary.of_string "schema a { entity X; }\n%session\nbogus\n" with
        | exception Dictionary.Error msg ->
            check Alcotest.bool "mentions line" true
              (Util.contains ~needle:"line" msg)
        | _ -> Alcotest.fail "expected rejection");
    tc "merge combines two dictionaries" (fun () ->
        let ws1 = Dictionary.of_string "schema a { entity X; }\n" in
        let ws2 =
          Dictionary.of_string "schema b { entity Y; }\n%session\n"
        in
        let merged = Dictionary.merge ws1 ws2 in
        check Alcotest.int "two schemas" 2
          (List.length (Workspace.schemas merged)));
    tc "merge drops conflicting assertions silently" (fun () ->
        let base =
          Dictionary.of_string
            "schema a { entity X; }\nschema b { entity Y; }\n%session\nobject \
             a.X 1 b.Y\n"
        in
        let extra =
          Dictionary.of_string
            "schema a { entity X; }\nschema b { entity Y; }\n%session\nobject \
             a.X 0 b.Y\n"
        in
        let merged = Dictionary.merge base extra in
        check Alcotest.int "one fact kept" 1
          (List.length (Workspace.object_facts merged)));
  ]

let mapping_tests =
  [
    tc "mappings persist and reconstruct" (fun () ->
        let ws = paper_workspace () in
        let result = Workspace.integrate ws in
        let text = Dictionary.result_to_string ws result in
        check Alcotest.bool "has integrated section" true
          (Util.contains ~needle:"%integrated" text);
        check Alcotest.bool "has mappings section" true
          (Util.contains ~needle:"%mappings" text);
        let mapping = Dictionary.mappings_of_string text in
        (* the reconstructed mapping translates queries identically *)
        let q =
          Query.Parser.query_of_string
            "select Name, GPA from Student where GPA >= 3.0"
        in
        let q1, _ =
          Query.Rewrite.to_integrated result.Result.mapping
            ~view:Workload.Paper.sc1 q
        in
        let q2, _ =
          Query.Rewrite.to_integrated mapping ~view:Workload.Paper.sc1 q
        in
        check Alcotest.string "same translation" (Query.Ast.to_string q1)
          (Query.Ast.to_string q2));
    tc "dictionary with mapping sections still loads as a workspace" (fun () ->
        let ws = paper_workspace () in
        let result = Workspace.integrate ws in
        let text = Dictionary.result_to_string ws result in
        let ws' = Dictionary.of_string text in
        check Alcotest.int "schemas" 2 (List.length (Workspace.schemas ws'));
        check Alcotest.int "facts" 3 (List.length (Workspace.object_facts ws')));
    tc "mappings_of_string is empty without the section" (fun () ->
        let mapping = Dictionary.mappings_of_string "schema a { entity X; }" in
        check Alcotest.int "no entries" 0
          (List.length (Integrate.Mapping.object_entries mapping)));
    tc "relationship mappings reconstruct too" (fun () ->
        let ws = paper_workspace () in
        let result = Workspace.integrate ws in
        let mapping =
          Dictionary.mappings_of_string (Dictionary.result_to_string ws result)
        in
        check Alcotest.bool "majors mapped" true
          (Integrate.Mapping.relationship_entry (Qname.v "sc1" "Majors") mapping
          |> Option.map (fun (e : Integrate.Mapping.entry) ->
                 Name.to_string e.Integrate.Mapping.target)
          = Some "E_Stud_Majo"));
  ]

let () =
  Alcotest.run "dictionary"
    [ ("dictionary", tests); ("mappings", mapping_tests) ]
