(* Tests for the basic-relation algebra behind assertion composition. *)

open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let rel = Alcotest.testable (Fmt.of_to_string Rel.to_string) Rel.equal

let basics = [ Rel.Eq; Rel.Lt; Rel.Gt; Rel.Ov; Rel.Dj ]

let converse_basic b =
  match Rel.is_singleton (Rel.converse (Rel.of_basic b)) with
  | Some b' -> b'
  | None -> assert false

(* every subset of the five basic relations *)
let all_subsets =
  List.init 32 (fun mask ->
      List.filteri (fun i _ -> (mask lsr i) land 1 = 1) basics)

let set_tests =
  [
    tc "of_list / to_list round" (fun () ->
        check rel "all" Rel.all (Rel.of_list basics);
        check rel "empty" Rel.empty (Rel.of_list []);
        check Alcotest.int "cardinal" 5 (Rel.cardinal Rel.all));
    tc "mem" (fun () ->
        check Alcotest.bool "eq in all" true (Rel.mem Rel.Eq Rel.all);
        check Alcotest.bool "eq not in {lt}" false
          (Rel.mem Rel.Eq (Rel.of_basic Rel.Lt)));
    tc "singleton detection" (fun () ->
        check Alcotest.bool "lt" true
          (Rel.is_singleton (Rel.of_basic Rel.Lt) = Some Rel.Lt);
        check Alcotest.bool "pair" true
          (Rel.is_singleton (Rel.of_list [ Rel.Lt; Rel.Ov ]) = None));
    tc "inter union subset" (fun () ->
        let a = Rel.of_list [ Rel.Lt; Rel.Ov ]
        and b = Rel.of_list [ Rel.Ov; Rel.Dj ] in
        check rel "inter" (Rel.of_basic Rel.Ov) (Rel.inter a b);
        check rel "union" (Rel.of_list [ Rel.Lt; Rel.Ov; Rel.Dj ]) (Rel.union a b);
        check Alcotest.bool "subset" true (Rel.subset (Rel.of_basic Rel.Ov) a));
  ]

let converse_tests =
  [
    tc "converse swaps Lt/Gt" (fun () ->
        check rel "lt->gt" (Rel.of_basic Rel.Gt) (Rel.converse (Rel.of_basic Rel.Lt));
        check rel "set" (Rel.of_list [ Rel.Gt; Rel.Dj ])
          (Rel.converse (Rel.of_list [ Rel.Lt; Rel.Dj ])));
    tc "converse is an involution (all 32 subsets)" (fun () ->
        List.iter
          (fun subset ->
            let r = Rel.of_list subset in
            check rel "involution" r (Rel.converse (Rel.converse r)))
          all_subsets);
  ]

let composition_tests =
  [
    tc "Eq is the identity" (fun () ->
        List.iter
          (fun b ->
            check rel "left id" (Rel.of_basic b) (Rel.compose_basic Rel.Eq b);
            check rel "right id" (Rel.of_basic b) (Rel.compose_basic b Rel.Eq))
          basics);
    tc "subset chains compose" (fun () ->
        check rel "lt.lt" (Rel.of_basic Rel.Lt) (Rel.compose_basic Rel.Lt Rel.Lt);
        check rel "gt.gt" (Rel.of_basic Rel.Gt) (Rel.compose_basic Rel.Gt Rel.Gt));
    tc "subset of disjoint is disjoint" (fun () ->
        check rel "lt.dj" (Rel.of_basic Rel.Dj) (Rel.compose_basic Rel.Lt Rel.Dj);
        check rel "dj.gt" (Rel.of_basic Rel.Dj) (Rel.compose_basic Rel.Dj Rel.Gt));
    tc "uninformative entries are all" (fun () ->
        check rel "lt.gt" Rel.all (Rel.compose_basic Rel.Lt Rel.Gt);
        check rel "ov.ov" Rel.all (Rel.compose_basic Rel.Ov Rel.Ov);
        check rel "dj.dj" Rel.all (Rel.compose_basic Rel.Dj Rel.Dj));
    tc "gt.lt excludes disjoint" (fun () ->
        check rel "gt.lt"
          (Rel.of_list [ Rel.Eq; Rel.Lt; Rel.Gt; Rel.Ov ])
          (Rel.compose_basic Rel.Gt Rel.Lt));
    tc "compose distributes over sets" (fun () ->
        let a = Rel.of_list [ Rel.Lt; Rel.Eq ] in
        let b = Rel.of_basic Rel.Dj in
        check rel "set compose"
          (Rel.union
             (Rel.compose_basic Rel.Lt Rel.Dj)
             (Rel.compose_basic Rel.Eq Rel.Dj))
          (Rel.compose a b));
    tc "converse duality on the whole table" (fun () ->
        (* (r1 . r2)^ = r2^ . r1^ *)
        List.iter
          (fun r1 ->
            List.iter
              (fun r2 ->
                check rel
                  (Printf.sprintf "%s.%s" (Rel.basic_to_string r1)
                     (Rel.basic_to_string r2))
                  (Rel.converse (Rel.compose_basic r1 r2))
                  (Rel.compose_basic (converse_basic r2) (converse_basic r1)))
              basics)
          basics);
    tc "compose is monotone in both arguments" (fun () ->
        List.iter
          (fun sub ->
            let small = Rel.of_list sub in
            List.iter
              (fun b ->
                let other = Rel.of_basic b in
                check Alcotest.bool "left monotone" true
                  (Rel.subset (Rel.compose small other) (Rel.compose Rel.all other));
                check Alcotest.bool "right monotone" true
                  (Rel.subset (Rel.compose other small) (Rel.compose other Rel.all)))
              basics)
          all_subsets);
  ]

let minimality_tests =
  [
    tc "composition table is minimal (every entry witnessed by extents)"
      (fun () ->
        (* enumerate every triple of non-empty subsets of {0..5} and
           record which (r_AB, r_BC, r_AC) combinations actually occur;
           every basic relation the table admits must occur, i.e. the
           table is not just sound but tight *)
        let subsets =
          List.init 63 (fun bits ->
              List.filter (fun i -> ((bits + 1) lsr i) land 1 = 1) [ 0; 1; 2; 3; 4; 5 ])
        in
        let seen = Hashtbl.create 256 in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                let r_ab = Rel.basic_of_extents Int.equal a b in
                List.iter
                  (fun c ->
                    let r_bc = Rel.basic_of_extents Int.equal b c in
                    let r_ac = Rel.basic_of_extents Int.equal a c in
                    Hashtbl.replace seen (r_ab, r_bc, r_ac) ())
                  subsets)
              subsets)
          subsets;
        List.iter
          (fun r1 ->
            List.iter
              (fun r2 ->
                List.iter
                  (fun r3 ->
                    if Rel.mem r3 (Rel.compose_basic r1 r2) then
                      check Alcotest.bool
                        (Printf.sprintf "%s.%s admits %s"
                           (Rel.basic_to_string r1) (Rel.basic_to_string r2)
                           (Rel.basic_to_string r3))
                        true
                        (Hashtbl.mem seen (r1, r2, r3)))
                  basics)
              basics)
          basics);
  ]

let extent_tests =
  [
    tc "basic_of_extents all five cases" (fun () ->
        let basic = Alcotest.testable (Fmt.of_to_string Rel.basic_to_string) ( = ) in
        let f = Rel.basic_of_extents Int.equal in
        check basic "eq" Rel.Eq (f [ 1; 2 ] [ 2; 1 ]);
        check basic "lt" Rel.Lt (f [ 1 ] [ 1; 2 ]);
        check basic "gt" Rel.Gt (f [ 1; 2 ] [ 2 ]);
        check basic "ov" Rel.Ov (f [ 1; 2 ] [ 2; 3 ]);
        check basic "dj" Rel.Dj (f [ 1 ] [ 2 ]));
  ]

let assertion_tests =
  [
    tc "codes round-trip" (fun () ->
        List.iter
          (fun a ->
            check Alcotest.bool "round" true
              (Assertion.of_code (Assertion.code a) = Some a))
          [
            Assertion.Equal;
            Assertion.Contained_in;
            Assertion.Contains;
            Assertion.Disjoint_integrable;
            Assertion.May_be;
            Assertion.Disjoint_nonintegrable;
          ];
        check Alcotest.bool "bad code" true (Assertion.of_code 7 = None));
    tc "codes match the screens" (fun () ->
        check Alcotest.int "equals=1" 1 (Assertion.code Assertion.Equal);
        check Alcotest.int "contained=2" 2 (Assertion.code Assertion.Contained_in);
        check Alcotest.int "contains=3" 3 (Assertion.code Assertion.Contains);
        check Alcotest.int "dj-int=4" 4 (Assertion.code Assertion.Disjoint_integrable);
        check Alcotest.int "maybe=5" 5 (Assertion.code Assertion.May_be);
        check Alcotest.int "dj-non=0" 0 (Assertion.code Assertion.Disjoint_nonintegrable));
    tc "converse" (fun () ->
        check Alcotest.bool "contains" true
          (Assertion.converse Assertion.Contains = Assertion.Contained_in);
        check Alcotest.bool "equal fixed" true
          (Assertion.converse Assertion.Equal = Assertion.Equal));
    tc "integrable classification" (fun () ->
        check Alcotest.bool "dj-int" true
          (Assertion.integrable Assertion.Disjoint_integrable);
        check Alcotest.bool "dj-non" false
          (Assertion.integrable Assertion.Disjoint_nonintegrable);
        check Alcotest.bool "is_disjoint" true
          (Assertion.is_disjoint Assertion.Disjoint_integrable
          && Assertion.is_disjoint Assertion.Disjoint_nonintegrable
          && not (Assertion.is_disjoint Assertion.May_be)));
    tc "denotations" (fun () ->
        check rel "equal" (Rel.of_basic Rel.Eq) (Rel.of_assertion Assertion.Equal);
        check rel "both disjoints" (Rel.of_basic Rel.Dj)
          (Rel.of_assertion Assertion.Disjoint_integrable));
    tc "to_assertion respects integrability flag" (fun () ->
        check Alcotest.bool "integrable" true
          (Rel.to_assertion ~integrable:true (Rel.of_basic Rel.Dj)
          = Some Assertion.Disjoint_integrable);
        check Alcotest.bool "non" true
          (Rel.to_assertion ~integrable:false (Rel.of_basic Rel.Dj)
          = Some Assertion.Disjoint_nonintegrable);
        check Alcotest.bool "non-singleton" true
          (Rel.to_assertion ~integrable:false Rel.all = None));
  ]

let () =
  Alcotest.run "rel"
    [
      ("sets", set_tests);
      ("converse", converse_tests);
      ("composition", composition_tests);
      ("extents", extent_tests);
      ("minimality", minimality_tests);
      ("assertions", assertion_tests);
    ]
