(* End-to-end tests for Phase 4: the full pipeline on the paper's
   figures, relationship-set integration, mappings and provenance. *)

open Ecr
open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let q = Qname.v

let result = lazy (Workload.Paper.integrate_sc1_sc2 ())

let figure5_tests =
  [
    tc "Screen 10: two entities" (fun () ->
        let r = Lazy.force result in
        check (Alcotest.list Alcotest.string) "entities"
          [ "E_Department"; "D_Stud_Facu" ]
          (List.map
             (fun oc -> Name.to_string oc.Object_class.name)
             (Schema.entities r.Result.schema)));
    tc "Screen 10: three categories" (fun () ->
        let r = Lazy.force result in
        check (Alcotest.slist Alcotest.string String.compare) "categories"
          [ "Student"; "Grad_student"; "Faculty" ]
          (List.map
             (fun oc -> Name.to_string oc.Object_class.name)
             (Schema.categories r.Result.schema)));
    tc "Screen 10: two relationships" (fun () ->
        let r = Lazy.force result in
        check (Alcotest.slist Alcotest.string String.compare) "relationships"
          [ "E_Stud_Majo"; "Works" ]
          (List.map
             (fun rel -> Name.to_string rel.Relationship.name)
             (Schema.relationships r.Result.schema)));
    tc "the integrated schema validates" (fun () ->
        let r = Lazy.force result in
        check (Alcotest.list Alcotest.string) "no errors" []
          (List.map Schema.error_to_string (Schema.validate r.Result.schema)));
    tc "no warnings on the paper example" (fun () ->
        let r = Lazy.force result in
        check (Alcotest.list Alcotest.string) "no warnings" [] r.Result.warnings);
    tc "Screen 11: Student's parents and children" (fun () ->
        let r = Lazy.force result in
        let s = r.Result.schema in
        check (Alcotest.list Alcotest.string) "parent" [ "D_Stud_Facu" ]
          (List.map Name.to_string
             (Object_class.parents (Option.get (Schema.find_object (Name.v "Student") s))));
        check (Alcotest.list Alcotest.string) "child" [ "Grad_student" ]
          (List.map Name.to_string (Schema.children s (Name.v "Student"))));
    tc "E_Stud_Majo connects Student to E_Department" (fun () ->
        let r = Lazy.force result in
        match Schema.find_relationship (Name.v "E_Stud_Majo") r.Result.schema with
        | Some rel ->
            check (Alcotest.list Alcotest.string) "participants"
              [ "Student"; "E_Department" ]
              (List.map Name.to_string (Relationship.objects rel));
            check (Alcotest.list Alcotest.string) "cards" [ "(1,1)"; "(0,N)" ]
              (List.map
                 (fun p -> Cardinality.to_string p.Relationship.card)
                 rel.Relationship.participants);
            check (Alcotest.list Alcotest.string) "merged attr" [ "D_Since" ]
              (List.map
                 (fun a -> Name.to_string a.Attribute.name)
                 rel.Relationship.attributes)
        | None -> Alcotest.fail "E_Stud_Majo missing");
    tc "Works passes through with redirected participants" (fun () ->
        let r = Lazy.force result in
        match Schema.find_relationship (Name.v "Works") r.Result.schema with
        | Some rel ->
            check (Alcotest.list Alcotest.string) "participants"
              [ "Faculty"; "E_Department" ]
              (List.map Name.to_string (Relationship.objects rel))
        | None -> Alcotest.fail "Works missing");
  ]

let provenance_tests =
  [
    tc "origins classified" (fun () ->
        let r = Lazy.force result in
        check Alcotest.bool "E_Department equivalent" true
          (Result.is_equivalent r (Name.v "E_Department"));
        check Alcotest.bool "D_Stud_Facu derived" true
          (Result.is_derived r (Name.v "D_Stud_Facu"));
        check Alcotest.bool "Faculty original" true
          (match Result.origin_of r (Name.v "Faculty") with
          | Some (Result.Original _) -> true
          | _ -> false));
    tc "component structures resolve transitively" (fun () ->
        let r = Lazy.force result in
        check (Alcotest.slist Alcotest.string String.compare) "D covers three"
          [ "sc1.Student"; "sc2.Faculty" ]
          (List.map Qname.to_string
             (Result.component_structures r (Name.v "D_Stud_Facu"))));
    tc "Screen 12: components of D_Name" (fun () ->
        let r = Lazy.force result in
        check (Alcotest.slist Alcotest.string String.compare) "three"
          [ "sc1.Student.Name"; "sc2.Grad_student.Name"; "sc2.Faculty.Name" ]
          (List.map Qname.Attr.to_string
             (Result.components_of_attribute r (Name.v "D_Stud_Facu") (Name.v "D_Name"))));
    tc "Screen 12: components of D_GPA on Student" (fun () ->
        let r = Lazy.force result in
        check (Alcotest.slist Alcotest.string String.compare) "two"
          [ "sc1.Student.GPA"; "sc2.Grad_student.GPA" ]
          (List.map Qname.Attr.to_string
             (Result.components_of_attribute r (Name.v "Student") (Name.v "D_GPA"))));
    tc "summary counts" (fun () ->
        let r = Lazy.force result in
        check Alcotest.bool "mentions 2 entities" true
          (Util.contains ~needle:"2 entities" (Result.summary r)));
  ]

let mapping_tests =
  [
    tc "every component structure has an entry" (fun () ->
        let r = Lazy.force result in
        List.iter
          (fun (s, cls) ->
            check Alcotest.bool (Qname.to_string (q s cls)) true
              (Mapping.object_entry (q s cls) r.Result.mapping <> None))
          [
            ("sc1", "Student");
            ("sc1", "Department");
            ("sc2", "Department");
            ("sc2", "Grad_student");
            ("sc2", "Faculty");
          ]);
    tc "attribute targets point at placements" (fun () ->
        let r = Lazy.force result in
        match Mapping.attr_target (q "sc1" "Student") (Name.v "Name") r.Result.mapping with
        | Some t ->
            check Alcotest.string "in D node" "D_Stud_Facu" (Name.to_string t.Mapping.in_class);
            check Alcotest.string "as D_Name" "D_Name" (Name.to_string t.Mapping.as_attr)
        | None -> Alcotest.fail "no attr target");
    tc "reverse direction: objects_into" (fun () ->
        let r = Lazy.force result in
        check Alcotest.int "two into E_Department" 2
          (List.length (Mapping.objects_into (Name.v "E_Department") r.Result.mapping)));
    tc "relationship mapping" (fun () ->
        let r = Lazy.force result in
        check Alcotest.bool "majors -> E_Stud_Majo" true
          (Mapping.relationship_entry (q "sc1" "Majors") r.Result.mapping
          |> Option.map (fun e -> Name.to_string e.Mapping.target)
          = Some "E_Stud_Majo"));
  ]

let fig2_tests =
  List.map
    (fun (mini : Workload.Paper.mini) ->
      tc mini.Workload.Paper.label (fun () ->
          let r = Workload.Paper.integrate_mini mini in
          let s = r.Result.schema in
          check (Alcotest.list Alcotest.string) "valid" []
            (List.map Schema.error_to_string (Schema.validate s));
          match mini.Workload.Paper.assertion with
          | Assertion.Equal ->
              check Alcotest.int "merged to one object" 1
                (List.length (Schema.objects s))
          | Assertion.Contains ->
              (* right becomes a category of left *)
              let right = (snd mini.Workload.Paper.pair).Qname.obj in
              check Alcotest.bool "category edge" true
                (match Schema.find_object right s with
                | Some oc -> Object_class.parents oc <> []
                | None -> false)
          | Assertion.May_be | Assertion.Disjoint_integrable ->
              check Alcotest.int "three objects (two + derived)" 3
                (List.length (Schema.objects s));
              check Alcotest.int "one derived entity" 1
                (List.length (Schema.entities s))
          | Assertion.Disjoint_nonintegrable ->
              check Alcotest.int "kept separate" 2 (List.length (Schema.objects s));
              check Alcotest.int "both entities" 2 (List.length (Schema.entities s))
          | Assertion.Contained_in -> Alcotest.fail "not used by figure 2"))
    Workload.Paper.fig2

let rel_merge_tests =
  [
    tc "equal relationships with unrelated participants split" (fun () ->
        let s1 =
          Schema.make (Name.v "x")
            ~objects:[ Object_class.entity (Name.v "A"); Object_class.entity (Name.v "B") ]
            ~relationships:
              [
                Relationship.binary (Name.v "R")
                  (Name.v "A", Cardinality.any)
                  (Name.v "B", Cardinality.any);
              ]
        and s2 =
          Schema.make (Name.v "y")
            ~objects:[ Object_class.entity (Name.v "C"); Object_class.entity (Name.v "D") ]
            ~relationships:
              [
                Relationship.binary (Name.v "S")
                  (Name.v "C", Cardinality.any)
                  (Name.v "D", Cardinality.any);
              ]
        in
        (* no object assertions: participants unrelated, so the
           relationship merge must be refused with a warning *)
        match
          Pipeline.quick s1 s2 ~equivalences:[] ~object_assertions:[]
            ~relationship_assertions:[ (q "x" "R", Assertion.Equal, q "y" "S") ]
            ()
        with
        | Ok r ->
            check Alcotest.int "both kept" 2
              (List.length (Schema.relationships r.Result.schema));
            check Alcotest.bool "warned" true (r.Result.warnings <> [])
        | Error _ -> Alcotest.fail "no conflict expected");
    tc "contained-in relationships produce a derived set" (fun () ->
        let s1 =
          Schema.make (Name.v "x")
            ~objects:[ Object_class.entity (Name.v "A"); Object_class.entity (Name.v "B") ]
            ~relationships:
              [
                Relationship.binary (Name.v "Teaches")
                  (Name.v "A", Cardinality.any)
                  (Name.v "B", Cardinality.any);
              ]
        and s2 =
          Schema.make (Name.v "y")
            ~objects:[ Object_class.entity (Name.v "A2"); Object_class.entity (Name.v "B2") ]
            ~relationships:
              [
                Relationship.binary (Name.v "Tutors")
                  (Name.v "A2", Cardinality.any)
                  (Name.v "B2", Cardinality.any);
              ]
        in
        match
          Pipeline.quick s1 s2
            ~equivalences:[]
            ~object_assertions:
              [
                (q "x" "A", Assertion.Equal, q "y" "A2");
                (q "x" "B", Assertion.Equal, q "y" "B2");
              ]
            ~relationship_assertions:
              [ (q "y" "Tutors", Assertion.Contained_in, q "x" "Teaches") ]
            ()
        with
        | Ok r ->
            let names =
              List.map
                (fun rel -> Name.to_string rel.Relationship.name)
                (Schema.relationships r.Result.schema)
            in
            check Alcotest.int "two originals + one derived" 3 (List.length names);
            check Alcotest.bool "derived D_ set present" true
              (List.exists (fun n -> String.length n > 2 && String.sub n 0 2 = "D_") names)
        | Error _ -> Alcotest.fail "no conflict expected");
    tc "merged relationship unions cardinalities" (fun () ->
        let s1 =
          Schema.make (Name.v "x")
            ~objects:[ Object_class.entity (Name.v "A"); Object_class.entity (Name.v "B") ]
            ~relationships:
              [
                Relationship.binary (Name.v "R")
                  (Name.v "A", Cardinality.exactly_one)
                  (Name.v "B", Cardinality.any);
              ]
        and s2 =
          Schema.make (Name.v "y")
            ~objects:[ Object_class.entity (Name.v "A2"); Object_class.entity (Name.v "B2") ]
            ~relationships:
              [
                Relationship.binary (Name.v "R")
                  (Name.v "A2", Cardinality.at_most_one)
                  (Name.v "B2", Cardinality.at_least_one);
              ]
        in
        match
          Pipeline.quick s1 s2 ~equivalences:[]
            ~object_assertions:
              [
                (q "x" "A", Assertion.Equal, q "y" "A2");
                (q "x" "B", Assertion.Equal, q "y" "B2");
              ]
            ~relationship_assertions:[ (q "x" "R", Assertion.Equal, q "y" "R") ]
            ()
        with
        | Ok r -> (
            match Schema.relationships r.Result.schema with
            | [ rel ] ->
                check (Alcotest.list Alcotest.string) "unions" [ "(0,1)"; "(0,N)" ]
                  (List.map
                     (fun p -> Cardinality.to_string p.Relationship.card)
                     rel.Relationship.participants)
            | rels -> Alcotest.failf "expected one relationship, got %d" (List.length rels))
        | Error _ -> Alcotest.fail "no conflict expected");
    tc "three-schema n-ary merge" (fun () ->
        let mk n =
          Schema.make (Name.v n)
            ~objects:
              [
                Object_class.entity
                  ~attrs:[ Attribute.v ~key:true "K" "char" ]
                  (Name.v "Thing");
              ]
            ~relationships:[]
        in
        let s1 = mk "a" and s2 = mk "b" and s3 = mk "c" in
        let eq =
          List.fold_left
            (fun acc s -> Equivalence.register_schema s acc)
            Equivalence.empty [ s1; s2; s3 ]
        in
        let matrix =
          List.fold_left
            (fun m (l, a, r) ->
              match Assertions.add l a r m with
              | Ok m -> m
              | Error _ -> Alcotest.fail "conflict")
            (Assertions.create [ s1; s2; s3 ])
            [
              (q "a" "Thing", Assertion.Equal, q "b" "Thing");
              (q "b" "Thing", Assertion.Equal, q "c" "Thing");
            ]
        in
        let r =
          Pipeline.integrate
            (Pipeline.input [ s1; s2; s3 ] eq matrix
               (Assertions.create_for_relationships [ s1; s2; s3 ]))
        in
        check Alcotest.int "one class" 1 (List.length (Schema.objects r.Result.schema));
        match Result.origin_of r (Name.v "E_Thing") with
        | Some (Result.Equivalent members) ->
            check Alcotest.int "three members" 3 (List.length members)
        | _ -> Alcotest.fail "expected an equivalent origin");
  ]

let () =
  Alcotest.run "integration"
    [
      ("figure5", figure5_tests);
      ("provenance", provenance_tests);
      ("mapping", mapping_tests);
      ("figure2", fig2_tests);
      ("relationships", rel_merge_tests);
    ]
