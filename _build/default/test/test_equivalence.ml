(* Tests for attribute equivalence classes (the ACS bookkeeping). *)

open Ecr
open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let a = Qname.Attr.v

let base =
  Equivalence.register_schema Workload.Paper.sc2
    (Equivalence.register_schema Workload.Paper.sc1 Equivalence.empty)

let tests =
  [
    tc "register_schema registers every attribute" (fun () ->
        (* sc1: 2+1+1 = 4, sc2: 1+3+2+1+0 = 7 *)
        check Alcotest.int "members" 11 (List.length (Equivalence.members base)));
    tc "fresh attributes are singletons" (fun () ->
        check Alcotest.int "class size" 1
          (List.length (Equivalence.class_of (a "sc1" "Student" "Name") base)));
    tc "declare unions two classes" (fun () ->
        let eq = Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name") base in
        check Alcotest.bool "equivalent" true
          (Equivalence.equivalent (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name") eq);
        check Alcotest.int "class size" 2
          (List.length (Equivalence.class_of (a "sc1" "Student" "Name") eq)));
    tc "transitivity through unions" (fun () ->
        let eq =
          base
          |> Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name")
          |> Equivalence.declare (a "sc2" "Faculty" "Name") (a "sc2" "Grad_student" "Name")
        in
        check Alcotest.bool "transitive" true
          (Equivalence.equivalent (a "sc1" "Student" "Name")
             (a "sc2" "Grad_student" "Name") eq);
        check Alcotest.int "one class of three" 3
          (List.length (Equivalence.class_of (a "sc1" "Student" "Name") eq)));
    tc "class numbers are stable and minimal" (fun () ->
        (* sc1.Student.Name was registered first, so its class keeps
           number 1 after any merge, like the screens show *)
        let eq = Equivalence.declare (a "sc2" "Grad_student" "Name") (a "sc1" "Student" "Name") base in
        check Alcotest.int "kept 1" 1
          (Equivalence.class_number (a "sc2" "Grad_student" "Name") eq));
    tc "class_number of unregistered raises" (fun () ->
        Alcotest.check_raises "not found" Not_found (fun () ->
            ignore (Equivalence.class_number (a "zz" "X" "y") base)));
    tc "separate makes a fresh singleton (Screen 7 delete)" (fun () ->
        let eq =
          base
          |> Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name")
          |> Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Grad_student" "Name")
          |> Equivalence.separate (a "sc2" "Faculty" "Name")
        in
        check Alcotest.bool "removed" false
          (Equivalence.equivalent (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name") eq);
        check Alcotest.bool "others intact" true
          (Equivalence.equivalent (a "sc1" "Student" "Name")
             (a "sc2" "Grad_student" "Name") eq));
    tc "separate the root keeps the class together" (fun () ->
        let eq =
          base
          |> Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name")
          |> Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Grad_student" "Name")
          |> Equivalence.separate (a "sc1" "Student" "Name")
        in
        check Alcotest.bool "root gone" false
          (Equivalence.equivalent (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name") eq);
        check Alcotest.bool "rest together" true
          (Equivalence.equivalent (a "sc2" "Faculty" "Name")
             (a "sc2" "Grad_student" "Name") eq));
    tc "shared_count is the OCS entry" (fun () ->
        let eq =
          base
          |> Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Grad_student" "Name")
          |> Equivalence.declare (a "sc1" "Student" "GPA") (a "sc2" "Grad_student" "GPA")
        in
        check Alcotest.int "two shared" 2
          (Equivalence.shared_count (Qname.v "sc1" "Student")
             (Qname.v "sc2" "Grad_student") eq);
        check Alcotest.int "none" 0
          (Equivalence.shared_count (Qname.v "sc1" "Department")
             (Qname.v "sc2" "Grad_student") eq));
    tc "a class spanning three objects counts in all pairs" (fun () ->
        let eq =
          base
          |> Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Grad_student" "Name")
          |> Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name")
        in
        check Alcotest.int "student-grad" 1
          (Equivalence.shared_count (Qname.v "sc1" "Student")
             (Qname.v "sc2" "Grad_student") eq);
        check Alcotest.int "student-faculty" 1
          (Equivalence.shared_count (Qname.v "sc1" "Student")
             (Qname.v "sc2" "Faculty") eq);
        (* and even between the two sc2 classes *)
        check Alcotest.int "grad-faculty" 1
          (Equivalence.shared_count (Qname.v "sc2" "Grad_student")
             (Qname.v "sc2" "Faculty") eq));
    tc "nontrivial_classes filters singletons" (fun () ->
        let eq = Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name") base in
        check Alcotest.int "exactly one" 1
          (List.length (Equivalence.nontrivial_classes eq));
        check Alcotest.int "all classes" 10 (List.length (Equivalence.classes eq)));
    tc "restrict drops a schema's attributes" (fun () ->
        let eq =
          base
          |> Equivalence.declare (a "sc1" "Student" "Name") (a "sc2" "Faculty" "Name")
          |> Equivalence.restrict (fun qa ->
                 Name.to_string qa.Qname.Attr.owner.Qname.schema <> "sc2")
        in
        check Alcotest.int "only sc1 left" 4 (List.length (Equivalence.members eq));
        check Alcotest.int "back to singleton" 1
          (List.length (Equivalence.class_of (a "sc1" "Student" "Name") eq)));
    tc "declare registers unknown attributes on the fly" (fun () ->
        let eq = Equivalence.declare (a "x" "Y" "z") (a "u" "V" "w") Equivalence.empty in
        check Alcotest.bool "joined" true
          (Equivalence.equivalent (a "x" "Y" "z") (a "u" "V" "w") eq));
  ]

let () = Alcotest.run "equivalence" [ ("equivalence", tests) ]
