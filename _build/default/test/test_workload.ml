(* Tests for the synthetic workload generator and its ground truth. *)

open Ecr

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let w = lazy (Workload.Generator.generate Workload.Generator.default_params)

let generator_tests =
  [
    tc "determinism: same seed, same schemas" (fun () ->
        let a = Workload.Generator.generate Workload.Generator.default_params in
        let b = Workload.Generator.generate Workload.Generator.default_params in
        List.iter2
          (fun s1 s2 -> check Alcotest.bool "equal" true (Schema.equal s1 s2))
          a.Workload.Generator.schemas b.Workload.Generator.schemas);
    tc "different seeds differ" (fun () ->
        let a = Workload.Generator.generate Workload.Generator.default_params in
        let b =
          Workload.Generator.generate
            { Workload.Generator.default_params with seed = 99 }
        in
        check Alcotest.bool "some difference" false
          (List.for_all2 Schema.equal a.Workload.Generator.schemas
             b.Workload.Generator.schemas));
    tc "generated schemas validate" (fun () ->
        List.iter
          (fun s ->
            check (Alcotest.list Alcotest.string)
              (Name.to_string (Schema.name s))
              []
              (List.map Schema.error_to_string (Schema.validate s)))
          (Lazy.force w).Workload.Generator.schemas);
    tc "requested number of views" (fun () ->
        let five =
          Workload.Generator.generate
            { Workload.Generator.default_params with schemas = 5 }
        in
        check Alcotest.int "five" 5 (List.length five.Workload.Generator.schemas));
    tc "every view has at least two classes" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool "non-trivial" true (List.length (Schema.objects s) >= 2))
          (Lazy.force w).Workload.Generator.schemas);
  ]

let truth_tests =
  [
    tc "true pairs really are equal by extent" (fun () ->
        let w = Lazy.force w in
        List.iter
          (fun (a, b) ->
            check Alcotest.bool (Qname.to_string a) true
              (w.Workload.Generator.oracle.Integrate.Dda.object_assertion a b
              = Some Integrate.Assertion.Equal))
          w.Workload.Generator.true_pairs);
    tc "oracle extents agree with extent_of" (fun () ->
        let w = Lazy.force w in
        List.iter
          (fun s ->
            List.iter
              (fun oc ->
                let q = Schema.qname s oc.Object_class.name in
                check Alcotest.bool "non-empty extent" true
                  (w.Workload.Generator.extent_of q <> []))
              (Schema.objects s))
          w.Workload.Generator.schemas);
    tc "related pairs all carry integrable assertions" (fun () ->
        let w = Lazy.force w in
        List.iter
          (fun (_, _, a) ->
            check Alcotest.bool "integrable" true (Integrate.Assertion.integrable a))
          w.Workload.Generator.related_pairs);
    tc "attr_id is consistent across views for true pairs" (fun () ->
        let w = Lazy.force w in
        match w.Workload.Generator.true_pairs with
        | [] -> () (* possible but unlikely; nothing to check *)
        | (a, b) :: _ ->
            (* the key attributes of two views of one concept share ids *)
            let keys q =
              let s =
                List.find
                  (fun s -> Name.equal (Schema.name s) q.Qname.schema)
                  w.Workload.Generator.schemas
              in
              match Schema.find_object q.Qname.obj s with
              | Some oc ->
                  List.filter_map
                    (fun (at : Attribute.t) ->
                      if at.Attribute.key then
                        w.Workload.Generator.attr_id
                          (Qname.Attr.make q at.Attribute.name)
                      else None)
                    oc.Object_class.attributes
              | None -> []
            in
            check Alcotest.bool "key ids match" true
              (match (keys a, keys b) with
              | x :: _, y :: _ -> x = y
              | _ -> false));
    tc "register teaches the oracle intermediate classes" (fun () ->
        let w = Lazy.force w in
        let counters = Integrate.Dda.fresh_counters () in
        let dda = Integrate.Dda.counting counters w.Workload.Generator.oracle in
        let result, _ = Integrate.Protocol.run ~name:"I1" w.Workload.Generator.schemas dda in
        w.Workload.Generator.register result;
        (* after registration, the oracle can answer about an integrated
           class versus a component class *)
        let integrated_q =
          Qname.make (Name.v "I1")
            (List.hd (Schema.objects result.Integrate.Result.schema)).Object_class.name
        in
        let any_component =
          List.hd (Integrate.Result.component_structures result integrated_q.Qname.obj)
        in
        check Alcotest.bool "oracle answers" true
          (w.Workload.Generator.oracle.Integrate.Dda.object_assertion integrated_q
             any_component
          <> None));
  ]

let populate_tests =
  [
    tc "stores validate" (fun () ->
        let w = Lazy.force w in
        List.iter
          (fun (s, st) ->
            check (Alcotest.list Alcotest.string)
              (Name.to_string (Schema.name s))
              []
              (List.map Instance.Store.violation_to_string (Instance.Store.check st)))
          (Workload.Generator.populate w));
    tc "extent sizes match the truth" (fun () ->
        let w = Lazy.force w in
        List.iter
          (fun (s, st) ->
            List.iter
              (fun oc ->
                let q = Schema.qname s oc.Object_class.name in
                check Alcotest.int (Qname.to_string q)
                  (List.length (w.Workload.Generator.extent_of q))
                  (Instance.Store.cardinality_of oc.Object_class.name st))
              (Schema.objects s))
          (Workload.Generator.populate w));
    tc "same entity carries the same key value in every view" (fun () ->
        let w = Lazy.force w in
        match w.Workload.Generator.true_pairs with
        | [] -> ()
        | (a, b) :: _ ->
            let stores = Workload.Generator.populate w in
            let key_values q =
              let s, st =
                List.find
                  (fun (s, _) -> Name.equal (Schema.name s) q.Qname.schema)
                  stores
              in
              let keys =
                Attribute.keys (Schema.all_attributes s q.Qname.obj)
                |> Attribute.names
              in
              match keys with
              | key :: _ ->
                  Instance.Store.extent q.Qname.obj st
                  |> Instance.Store.Oid.Set.elements
                  |> List.map (fun oid ->
                         Instance.Value.to_string
                           (Instance.Store.value oid key st))
                  |> List.sort String.compare
              | [] -> []
            in
            check (Alcotest.list Alcotest.string) "same key sets" (key_values a)
              (key_values b));
  ]

let prng_tests =
  [
    tc "int respects bounds" (fun () ->
        let g = Workload.Prng.create 1 in
        for _ = 1 to 1000 do
          let n = Workload.Prng.int g 7 in
          check Alcotest.bool "in range" true (n >= 0 && n < 7)
        done);
    tc "float in unit interval" (fun () ->
        let g = Workload.Prng.create 2 in
        for _ = 1 to 1000 do
          let x = Workload.Prng.float g in
          check Alcotest.bool "in range" true (x >= 0.0 && x < 1.0)
        done);
    tc "deterministic sequences" (fun () ->
        let g1 = Workload.Prng.create 3 and g2 = Workload.Prng.create 3 in
        for _ = 1 to 100 do
          check Alcotest.int "same" (Workload.Prng.int g1 1000) (Workload.Prng.int g2 1000)
        done);
    tc "shuffle permutes" (fun () ->
        let g = Workload.Prng.create 4 in
        let xs = List.init 20 Fun.id in
        let ys = Workload.Prng.shuffle g xs in
        check (Alcotest.list Alcotest.int) "same multiset" xs (List.sort compare ys));
    tc "pick fails on empty" (fun () ->
        let g = Workload.Prng.create 5 in
        Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty list")
          (fun () -> ignore (Workload.Prng.pick g ([] : int list))));
  ]

let () =
  Alcotest.run "workload"
    [
      ("generator", generator_tests);
      ("truth", truth_tests);
      ("populate", populate_tests);
      ("prng", prng_tests);
    ]
