(* Tests for update (transaction) operations and their translation. *)

open Ecr
module S = Instance.Store
module V = Instance.Value

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let store () =
  let st = S.create Workload.Paper.sc1 in
  let student name gpa = S.tuple [ ("Name", V.str name); ("GPA", V.real gpa) ] in
  let st, ann = S.insert (Name.v "Student") (student "Ann" 3.9) st in
  let st, _ = S.insert (Name.v "Student") (student "Ben" 2.5) st in
  let st, cs = S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "CS") ]) st in
  let st = S.relate (Name.v "Majors") [ ann; cs ] Name.Map.empty st in
  st

let direct_tests =
  [
    tc "insert adds to the extent" (fun () ->
        let st, n =
          Query.Update.apply
            (Query.Update.insert "Student"
               [ ("Name", V.str "Cyd"); ("GPA", V.real 3.0) ])
            (store ())
        in
        check Alcotest.int "one row" 1 n;
        check Alcotest.int "three students" 3 (S.cardinality_of (Name.v "Student") st));
    tc "delete removes matching entities and their links" (fun () ->
        let st, n =
          Query.Update.apply
            (Query.Update.delete "Student"
               ~where:Query.Ast.(atom "Name" Eq (V.str "Ann")))
            (store ())
        in
        check Alcotest.int "one deleted" 1 n;
        check Alcotest.int "one student left" 1 (S.cardinality_of (Name.v "Student") st);
        check Alcotest.int "her majors link is gone" 0
          (List.length (S.links (Name.v "Majors") st)));
    tc "delete without a predicate clears the class" (fun () ->
        let st, n = Query.Update.apply (Query.Update.delete "Student") (store ()) in
        check Alcotest.int "both deleted" 2 n;
        check Alcotest.int "empty" 0 (S.cardinality_of (Name.v "Student") st));
    tc "modify updates matching entities only" (fun () ->
        let st, n =
          Query.Update.apply
            (Query.Update.modify "Student"
               ~where:Query.Ast.(atom "GPA" Lt (V.real 3.0))
               [ ("GPA", V.real 3.0) ])
            (store ())
        in
        check Alcotest.int "one updated" 1 n;
        let rows =
          Query.Eval.run
            Query.Ast.(query "Student" ~where:(atom "GPA" Ge (V.real 3.0)))
            st
        in
        check Alcotest.int "both qualify now" 2 (List.length rows));
    tc "unknown class or attribute raise" (fun () ->
        (match Query.Update.apply (Query.Update.delete "Ghost") (store ()) with
        | exception Query.Update.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
        match
          Query.Update.apply
            (Query.Update.insert "Student" [ ("Ghost", V.int 1) ])
            (store ())
        with
        | exception Query.Update.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let translation_tests =
  [
    tc "insert through a view lands in the integrated class" (fun () ->
        let r = Workload.Paper.integrate_sc1_sc2 () in
        let integrated = S.create r.Integrate.Result.schema in
        let op =
          Query.Update.insert "Grad_student"
            [ ("Name", V.str "Zoe"); ("GPA", V.real 3.7); ("Support_type", V.str "TA") ]
        in
        let op' =
          Query.Update.to_integrated r.Integrate.Result.mapping
            ~view:Workload.Paper.sc2 op
        in
        check Alcotest.bool "renamed attrs" true
          (Util.contains ~needle:"D_Name" (Query.Update.to_string op'));
        let st, n = Query.Update.apply op' integrated in
        check Alcotest.int "inserted" 1 n;
        check Alcotest.int "visible as grad" 1
          (S.cardinality_of (Name.v "Grad_student") st);
        (* and through the category chain, as a student and in the D node *)
        check Alcotest.int "visible as student" 1
          (S.cardinality_of (Name.v "Student") st);
        check Alcotest.int "visible in D_Stud_Facu" 1
          (S.cardinality_of (Name.v "D_Stud_Facu") st));
    tc "view delete translates its predicate" (fun () ->
        let r = Workload.Paper.integrate_sc1_sc2 () in
        let op =
          Query.Update.delete "Student"
            ~where:Query.Ast.(atom "Name" Eq (V.str "Ann"))
        in
        let op' =
          Query.Update.to_integrated r.Integrate.Result.mapping
            ~view:Workload.Paper.sc1 op
        in
        check Alcotest.string "full translation"
          "delete from Student where D_Name = \"Ann\""
          (Query.Update.to_string op'));
    tc "view update round trip on migrated data" (fun () ->
        let r = Workload.Paper.integrate_sc1_sc2 () in
        let st1 = store () in
        let merged, _ =
          Query.Migrate.run r.Integrate.Result.mapping
            ~integrated:r.Integrate.Result.schema
            [ (Workload.Paper.sc1, st1) ]
        in
        (* raise every student's GPA through the view mapping *)
        let op =
          Query.Update.modify "Student" [ ("GPA", V.real 4.0) ]
        in
        let op' =
          Query.Update.to_integrated r.Integrate.Result.mapping
            ~view:Workload.Paper.sc1 op
        in
        let merged, n = Query.Update.apply op' merged in
        check Alcotest.int "both updated" 2 n;
        let q =
          Query.Ast.(query "Student" ~where:(atom "D_GPA" Eq (V.real 4.0)))
        in
        check Alcotest.int "all 4.0" 2 (List.length (Query.Eval.run q merged)));
    tc "unmapped view class raises" (fun () ->
        let r = Workload.Paper.integrate_sc1_sc2 () in
        match
          Query.Update.to_integrated r.Integrate.Result.mapping
            ~view:Workload.Paper.sc3
            (Query.Update.delete "Instructor")
        with
        | exception Query.Rewrite.Unmapped _ -> ()
        | _ -> Alcotest.fail "expected Unmapped");
    tc "view-update side effect is visible to other views" (fun () ->
        (* delete a department through sc1's view; sc2's view of the same
           merged department disappears too -- the classic view-update
           effect, here made explicit *)
        let r = Workload.Paper.integrate_sc1_sc2 () in
        let st1 = store () in
        let st2 = S.create Workload.Paper.sc2 in
        let st2, _ =
          S.insert (Name.v "Department") (S.tuple [ ("Name", V.str "CS") ]) st2
        in
        let merged, _ =
          Query.Migrate.run r.Integrate.Result.mapping
            ~integrated:r.Integrate.Result.schema
            [ (Workload.Paper.sc1, st1); (Workload.Paper.sc2, st2) ]
        in
        let op =
          Query.Update.delete "Department"
            ~where:Query.Ast.(atom "Name" Eq (V.str "CS"))
        in
        let op' =
          Query.Update.to_integrated r.Integrate.Result.mapping
            ~view:Workload.Paper.sc1 op
        in
        let merged, n = Query.Update.apply op' merged in
        check Alcotest.int "one merged department deleted" 1 n;
        check Alcotest.int "gone for everyone" 0
          (S.cardinality_of (Name.v "E_Department") merged));
  ]

let () =
  Alcotest.run "update"
    [ ("direct", direct_tests); ("translation", translation_tests) ]
