(* Tests for the hand-written domain sessions. *)

open Ecr

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let university = lazy (Workload.Domains.integrate ~name:"campus" Workload.Domains.university)
let company = lazy (Workload.Domains.integrate ~name:"corp" Workload.Domains.company)

let tests =
  [
    tc "university views validate individually" (fun () ->
        List.iter
          (fun s ->
            check (Alcotest.list Alcotest.string)
              (Name.to_string (Schema.name s))
              []
              (List.map Schema.error_to_string (Schema.validate s)))
          Workload.Domains.university.Workload.Domains.schemas);
    tc "university integrates without warnings" (fun () ->
        let r = Lazy.force university in
        check (Alcotest.list Alcotest.string) "no warnings" []
          r.Integrate.Result.warnings;
        check (Alcotest.list Alcotest.string) "valid" []
          (List.map Schema.error_to_string (Schema.validate r.Integrate.Result.schema)));
    tc "borrower generalises students and instructors" (fun () ->
        let r = Lazy.force university in
        let s = r.Integrate.Result.schema in
        let parents n =
          match Schema.find_object (Name.v n) s with
          | Some oc -> List.map Name.to_string (Object_class.parents oc)
          | None -> Alcotest.failf "missing %s" n
        in
        check (Alcotest.list Alcotest.string) "student" [ "Borrower" ] (parents "Student");
        check (Alcotest.list Alcotest.string) "instructor" [ "Borrower" ]
          (parents "Instructor");
        check (Alcotest.list Alcotest.string) "resident under student" [ "Student" ]
          (parents "Resident"));
    tc "merged identity attributes land on Borrower" (fun () ->
        let r = Lazy.force university in
        check
          (Alcotest.slist Alcotest.string String.compare)
          "components of D_Ssn"
          [ "registrar.Student.Ssn"; "registrar.Instructor.Ssn";
            "library.Borrower.Ssn"; "housing.Resident.Ssn" ]
          (List.map Qname.Attr.to_string
             (Integrate.Result.components_of_attribute r (Name.v "Borrower")
                (Name.v "D_Ssn"))));
    tc "company merges employee and staff" (fun () ->
        let r = Lazy.force company in
        check (Alcotest.list Alcotest.string) "no warnings" []
          r.Integrate.Result.warnings;
        match Integrate.Result.origin_of r (Name.v "E_Empl_Staf") with
        | Some (Integrate.Result.Equivalent members) ->
            check Alcotest.int "two members" 2 (List.length members)
        | _ ->
            (* the merged name depends on the naming rule; find it *)
            let merged =
              List.find_opt
                (fun oc -> Integrate.Result.is_equivalent r oc.Object_class.name)
                (Schema.objects r.Integrate.Result.schema)
            in
            check Alcotest.bool "an equals-merged class exists" true (merged <> None));
    tc "worker becomes a category of the merged employee" (fun () ->
        let r = Lazy.force company in
        let s = r.Integrate.Result.schema in
        match Schema.find_object (Name.v "Worker") s with
        | Some oc ->
            check Alcotest.int "one parent" 1
              (List.length (Object_class.parents oc))
        | None -> Alcotest.fail "Worker missing");
    tc "scripted DDA reproduces the recorded sessions" (fun () ->
        let session = Workload.Domains.university in
        let result, _ =
          Integrate.Protocol.run
            ~options:
              { Integrate.Protocol.defaults with exhaustive_attribute_pairs = true }
            ~name:"campus" session.Workload.Domains.schemas
            (Workload.Domains.dda session)
        in
        let direct = Lazy.force university in
        check Alcotest.bool "same schema" true
          (Schema.equal result.Integrate.Result.schema
             direct.Integrate.Result.schema));
    tc "domain sessions raise no analysis conflicts" (fun () ->
        let ws =
          List.fold_left
            (fun ws s -> Integrate.Workspace.add_schema s ws)
            Integrate.Workspace.empty
            Workload.Domains.company.Workload.Domains.schemas
        in
        let ws =
          List.fold_left
            (fun ws (a, b) -> Integrate.Workspace.declare_equivalent a b ws)
            ws Workload.Domains.company.Workload.Domains.equivalences
        in
        let issues = Integrate.Analysis.analyse ws in
        check Alcotest.bool "no domain conflicts" false
          (List.exists
             (function Integrate.Analysis.Domain_conflict _ -> true | _ -> false)
             issues));
  ]

let () = Alcotest.run "domains" [ ("domains", tests) ]
