(* Tests for the section-4 matching heuristics. *)

open Heuristics

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let close = Alcotest.float 1e-9

let strings_tests =
  [
    tc "normalize strips and lowers" (fun () ->
        check Alcotest.string "gradstudent" "gradstudent"
          (Strings.normalize "Grad_Student");
        check Alcotest.string "keeps digits" "x1" (Strings.normalize "X-1"));
    tc "tokens split on underscores and case" (fun () ->
        check (Alcotest.list Alcotest.string) "snake" [ "grad"; "student" ]
          (Strings.tokens "grad_student");
        check (Alcotest.list Alcotest.string) "camel" [ "grad"; "student" ]
          (Strings.tokens "GradStudent");
        check (Alcotest.list Alcotest.string) "acronym run" [ "http"; "server" ]
          (Strings.tokens "HTTPServer");
        check (Alcotest.list Alcotest.string) "digits split" [ "dept"; "2" ]
          (Strings.tokens "dept2"));
    tc "levenshtein known values" (fun () ->
        check Alcotest.int "kitten/sitting" 3 (Strings.levenshtein "kitten" "sitting");
        check Alcotest.int "identical" 0 (Strings.levenshtein "abc" "abc");
        check Alcotest.int "vs empty" 3 (Strings.levenshtein "" "abc"));
    tc "levenshtein similarity bounds" (fun () ->
        check close "equal" 1.0 (Strings.levenshtein_similarity "x" "x");
        check close "empty both" 1.0 (Strings.levenshtein_similarity "" "");
        check close "disjoint" 0.0 (Strings.levenshtein_similarity "ab" "xy"));
    tc "dice bigrams" (fun () ->
        check close "identical" 1.0 (Strings.dice_bigrams "night" "night");
        check close "night/nacht" (2.0 /. 8.0) (Strings.dice_bigrams "night" "nacht"));
    tc "jaro known value" (fun () ->
        let j = Strings.jaro "martha" "marhta" in
        check Alcotest.bool "approx .944" true (Float.abs (j -. 0.944444) < 1e-4));
    tc "jaro_winkler boosts prefixes" (fun () ->
        check Alcotest.bool "jw >= jaro" true
          (Strings.jaro_winkler "dept" "department" >= Strings.jaro "dept" "department"));
    tc "token overlap" (fun () ->
        check close "half" (1.0 /. 3.0)
          (Strings.token_overlap "grad_student" "student_name"));
    tc "abbreviation detection" (fun () ->
        check Alcotest.bool "dept" true (Strings.abbreviation_of "dept" "department");
        check Alcotest.bool "subsequence gpa" true
          (Strings.abbreviation_of "gpa" "gradepointaverage");
        check Alcotest.bool "not xyz" false (Strings.abbreviation_of "xyz" "department"));
    tc "name_similarity forgives spelling conventions" (fun () ->
        check Alcotest.bool "snake vs camel" true
          (Strings.name_similarity "Grad_Student" "gradStudent" > 0.95);
        check Alcotest.bool "unrelated stays low" true
          (Strings.name_similarity "Budget" "Name" < 0.5));
  ]

let synonyms_tests =
  [
    tc "rings merge transitively" (fun () ->
        let d =
          Synonyms.(empty |> add_synonyms [ "a"; "b" ] |> add_synonyms [ "b"; "c" ])
        in
        check Alcotest.bool "a~c" true (Synonyms.are_synonyms "a" "c" d));
    tc "synonyms excludes self" (fun () ->
        let d = Synonyms.of_groups [ [ "name"; "title" ] ] in
        check (Alcotest.list Alcotest.string) "other" [ "title" ]
          (Synonyms.synonyms "name" d));
    tc "antonyms" (fun () ->
        let d = Synonyms.(add_antonyms "min" "max" empty) in
        check Alcotest.bool "min/max" true (Synonyms.are_antonyms "min" "max" d);
        check Alcotest.bool "not synonyms" false (Synonyms.are_synonyms "min" "max" d));
    tc "token similarity uses rings" (fun () ->
        let d = Synonyms.default in
        check Alcotest.bool "dept_name vs department_title" true
          (Synonyms.token_similarity d "dept_name" "department_title" > 0.9));
    tc "antonymous tokens penalise" (fun () ->
        let d = Synonyms.default in
        check Alcotest.bool "start vs end low" true
          (Synonyms.token_similarity d "start_date" "end_date" < 0.6));
    tc "default dictionary is populated" (fun () ->
        check Alcotest.bool "size" true (Synonyms.size Synonyms.default > 50));
  ]

let weights = Resemblance.default_weights Synonyms.default

let resemblance_tests =
  [
    tc "attribute score in unit interval" (fun () ->
        let a = Ecr.Attribute.v ~key:true "Name" "char" in
        let b = Ecr.Attribute.v ~key:true "Title" "char" in
        let s = Resemblance.attribute_score weights a b in
        check Alcotest.bool "bounds" true (s >= 0.0 && s <= 1.0);
        check Alcotest.bool "synonyms score well" true (s > 0.5));
    tc "domain compatibility contributes" (fun () ->
        let a = Ecr.Attribute.v "x" "int" in
        let same = Ecr.Attribute.v "x" "int" in
        let widened = Ecr.Attribute.v "x" "real" in
        let clash = Ecr.Attribute.v "x" "date" in
        let s_same = Resemblance.attribute_score weights a same
        and s_wide = Resemblance.attribute_score weights a widened
        and s_clash = Resemblance.attribute_score weights a clash in
        check Alcotest.bool "same > widened" true (s_same > s_wide);
        check Alcotest.bool "widened > clash" true (s_wide > s_clash));
    tc "suggest_equivalences finds the paper pairs" (fun () ->
        let sc1 = Workload.Paper.sc1 and sc2 = Workload.Paper.sc2 in
        let student =
          Option.get (Ecr.Schema.find_object (Ecr.Name.v "Student") sc1)
        in
        let grad =
          Option.get (Ecr.Schema.find_object (Ecr.Name.v "Grad_student") sc2)
        in
        let suggestions =
          Resemblance.suggest_equivalences weights (sc1, student) (sc2, grad)
        in
        let names =
          List.map
            (fun (a, b, _) ->
              (Ecr.Name.to_string a.Ecr.Qname.Attr.attr,
               Ecr.Name.to_string b.Ecr.Qname.Attr.attr))
            suggestions
        in
        check Alcotest.bool "Name-Name" true (List.mem ("Name", "Name") names);
        check Alcotest.bool "GPA-GPA" true (List.mem ("GPA", "GPA") names);
        check Alcotest.bool "one-to-one" true
          (List.length names = List.length (List.sort_uniq compare (List.map fst names))));
    tc "object score favours same concept" (fun () ->
        let sc1 = Workload.Paper.sc1 and sc2 = Workload.Paper.sc2 in
        let dept1 = Option.get (Ecr.Schema.find_object (Ecr.Name.v "Department") sc1) in
        let dept2 = Option.get (Ecr.Schema.find_object (Ecr.Name.v "Department") sc2) in
        let fac = Option.get (Ecr.Schema.find_object (Ecr.Name.v "Faculty") sc2) in
        check Alcotest.bool "dept-dept > dept-faculty" true
          (Resemblance.object_score weights dept1 dept2
          > Resemblance.object_score weights dept1 fac));
  ]

let schema_resemblance_tests =
  [
    tc "identical schemas score highest" (fun () ->
        let s = Workload.Paper.sc1 in
        let self = Schema_resemblance.score weights s s in
        let other = Schema_resemblance.score weights s Workload.Paper.sc2 in
        check Alcotest.bool "self >= other" true (self >= other);
        check Alcotest.bool "self high" true (self > 0.9));
    tc "rank_pairs sorts descending" (fun () ->
        let w = Workload.Generator.generate Workload.Generator.default_params in
        let pairs =
          Schema_resemblance.rank_pairs weights
            (Workload.Paper.sc1 :: Workload.Paper.sc2 :: w.Workload.Generator.schemas)
        in
        let scores = List.map (fun (_, _, s) -> s) pairs in
        check Alcotest.bool "sorted" true
          (List.sort (fun a b -> Float.compare b a) scores = scores));
    tc "most_similar_pair returns None for singleton" (fun () ->
        check Alcotest.bool "none" true
          (Schema_resemblance.most_similar_pair weights [ Workload.Paper.sc1 ] = None));
  ]

let construct_tests =
  [
    tc "marriage entity vs marriage relationship" (fun () ->
        (* The paper's own motivating example for cross-construct
           correspondence. *)
        let s1 =
          Ecr.Schema.make (Ecr.Name.v "a")
            ~objects:
              [
                Ecr.Object_class.entity
                  ~attrs:
                    [
                      Ecr.Attribute.v "Marriage_date" "date";
                      Ecr.Attribute.v "Marriage_location" "char";
                      Ecr.Attribute.v "Number_of_children" "int";
                    ]
                  (Ecr.Name.v "Marriage");
              ]
            ~relationships:[]
        in
        let s2 =
          Ecr.Schema.make (Ecr.Name.v "b")
            ~objects:
              [
                Ecr.Object_class.entity
                  ~attrs:[ Ecr.Attribute.v ~key:true "Name" "char" ]
                  (Ecr.Name.v "Male");
                Ecr.Object_class.entity
                  ~attrs:[ Ecr.Attribute.v ~key:true "Name" "char" ]
                  (Ecr.Name.v "Female");
              ]
            ~relationships:
              [
                Ecr.Relationship.binary
                  ~attrs:
                    [
                      Ecr.Attribute.v "Marriage_date" "date";
                      Ecr.Attribute.v "Marriage_location" "char";
                      Ecr.Attribute.v "Number_of_children" "int";
                    ]
                  (Ecr.Name.v "Married_to")
                  (Ecr.Name.v "Male", Ecr.Cardinality.at_most_one)
                  (Ecr.Name.v "Female", Ecr.Cardinality.at_most_one);
              ]
        in
        match Construct.detect weights s1 s2 with
        | [] -> Alcotest.fail "expected a candidate"
        | c :: _ ->
            check Alcotest.string "entity side" "a.Marriage"
              (Ecr.Qname.to_string c.Construct.entity_side);
            check Alcotest.string "rel side" "b.Married_to"
              (Ecr.Qname.to_string c.Construct.relationship_side);
            check Alcotest.int "three shared" 3
              (List.length c.Construct.shared_attributes);
            check Alcotest.bool "high score" true (c.Construct.score >= 0.99));
    tc "needs at least two shared attributes" (fun () ->
        let s1 =
          Ecr.Schema.make (Ecr.Name.v "a")
            ~objects:
              [
                Ecr.Object_class.entity
                  ~attrs:[ Ecr.Attribute.v "Date" "date" ]
                  (Ecr.Name.v "Event");
              ]
            ~relationships:[]
        in
        let s2 =
          Ecr.Schema.make (Ecr.Name.v "b")
            ~objects:[ Ecr.Object_class.entity (Ecr.Name.v "X") ]
            ~relationships:
              [
                Ecr.Relationship.binary
                  ~attrs:[ Ecr.Attribute.v "Date" "date" ]
                  (Ecr.Name.v "R")
                  (Ecr.Name.v "X", Ecr.Cardinality.any)
                  (Ecr.Name.v "X", Ecr.Cardinality.any)
              ]
        in
        check Alcotest.int "no candidates" 0
          (List.length (Construct.detect weights s1 s2)));
  ]

let () =
  Alcotest.run "heuristics"
    [
      ("strings", strings_tests);
      ("synonyms", synonyms_tests);
      ("resemblance", resemblance_tests);
      ("schema-resemblance", schema_resemblance_tests);
      ("construct", construct_tests);
    ]
