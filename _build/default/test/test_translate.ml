(* Tests for the relational / hierarchical -> ECR translation. *)

open Ecr

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let payroll =
  {
    Translate.Relational.db_name = "payroll";
    relations =
      [
        Translate.Relational.relation ~pk:[ "dno" ] "dept"
          [ ("dno", "int", false); ("dname", "char", false) ];
        Translate.Relational.relation ~pk:[ "ssn" ]
          ~fks:[ Translate.Relational.fk [ "dno" ] "dept" [ "dno" ] ]
          "emp"
          [ ("ssn", "char", false); ("name", "char", false); ("dno", "int", false) ];
        Translate.Relational.relation ~pk:[ "ssn" ]
          ~fks:[ Translate.Relational.fk [ "ssn" ] "emp" [ "ssn" ] ]
          "manager"
          [ ("ssn", "char", false); ("bonus", "real", true) ];
        Translate.Relational.relation ~pk:[ "ssn"; "pno" ]
          ~fks:
            [
              Translate.Relational.fk [ "ssn" ] "emp" [ "ssn" ];
              Translate.Relational.fk [ "pno" ] "project" [ "pno" ];
            ]
          "assign"
          [ ("ssn", "char", false); ("pno", "int", false); ("hours", "real", true) ];
        Translate.Relational.relation ~pk:[ "pno" ] "project"
          [ ("pno", "int", false); ("pname", "char", false) ];
      ];
  }

let relational_tests =
  [
    tc "classification" (fun () ->
        let find n = List.find (fun r -> r.Translate.Relational.rel_name = n) payroll.relations in
        check Alcotest.bool "dept entity" true
          (Translate.Relational.classify payroll (find "dept") = `Entity);
        check Alcotest.bool "emp entity" true
          (Translate.Relational.classify payroll (find "emp") = `Entity);
        check Alcotest.bool "manager category" true
          (Translate.Relational.classify payroll (find "manager") = `Category "emp");
        check Alcotest.bool "assign relationship" true
          (match Translate.Relational.classify payroll (find "assign") with
          | `Relationship [ "emp"; "project" ] -> true
          | _ -> false));
    tc "translation shape" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        check Alcotest.int "entities" 3 (List.length (Schema.entities s));
        check Alcotest.int "categories" 1 (List.length (Schema.categories s));
        check Alcotest.int "relationships" 2 (List.length (Schema.relationships s));
        check (Alcotest.list Alcotest.string) "no validation errors" []
          (List.map Schema.error_to_string (Schema.validate s)));
    tc "category drops inherited keys, keeps local attrs" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        match Schema.find_object (Name.v "manager") s with
        | Some oc ->
            check (Alcotest.list Alcotest.string) "local only" [ "bonus" ]
              (List.map
                 (fun a -> Name.to_string a.Attribute.name)
                 oc.Object_class.attributes)
        | None -> Alcotest.fail "missing manager");
    tc "fk relationship cardinality follows nullability" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        match Schema.find_relationship (Name.v "emp_dept") s with
        | Some r -> (
            match Relationship.participant_for (Name.v "emp") r with
            | Some p ->
                check Alcotest.string "mandatory" "(1,1)"
                  (Cardinality.to_string p.Relationship.card)
            | None -> Alcotest.fail "emp not participating")
        | None -> Alcotest.fail "missing emp_dept");
    tc "fk columns removed from the entity" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        match Schema.find_object (Name.v "emp") s with
        | Some oc ->
            check Alcotest.bool "dno gone" true
              (Attribute.find (Name.v "dno") oc.Object_class.attributes = None)
        | None -> Alcotest.fail "missing emp");
    tc "m:n keeps descriptive attributes" (fun () ->
        let s = Translate.Relational.to_ecr payroll in
        match Schema.find_relationship (Name.v "assign") s with
        | Some r ->
            check (Alcotest.list Alcotest.string) "hours" [ "hours" ]
              (List.map (fun a -> Name.to_string a.Attribute.name) r.Relationship.attributes)
        | None -> Alcotest.fail "missing assign");
    tc "missing fk target raises" (fun () ->
        let bad =
          {
            Translate.Relational.db_name = "bad";
            relations =
              [
                Translate.Relational.relation ~pk:[ "a" ]
                  ~fks:[ Translate.Relational.fk [ "b" ] "ghost" [ "x" ] ]
                  "r"
                  [ ("a", "int", false); ("b", "int", true) ];
              ];
          }
        in
        match Translate.Relational.to_ecr bad with
        | exception Translate.Relational.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
  ]

let hdb =
  {
    Translate.Hierarchical.hdb_name = "personnel";
    records =
      [
        Translate.Hierarchical.record "department"
          [ ("dno", "int", true); ("dname", "char", false) ];
        Translate.Hierarchical.record ~parent:"department" "employee"
          [ ("ssn", "char", true); ("name", "char", false) ];
        Translate.Hierarchical.record ~parent:"employee" ~virtual_parent:"project"
          "task"
          [ ("tno", "int", true) ];
        Translate.Hierarchical.record "project" [ ("pno", "int", true) ];
      ];
  }

let hierarchical_tests =
  [
    tc "records become entities" (fun () ->
        let s = Translate.Hierarchical.to_ecr hdb in
        check Alcotest.int "entities" 4 (List.length (Schema.entities s));
        check (Alcotest.list Alcotest.string) "valid" []
          (List.map Schema.error_to_string (Schema.validate s)));
    tc "physical arc is (1,1) on the child" (fun () ->
        let s = Translate.Hierarchical.to_ecr hdb in
        match Schema.find_relationship (Name.v "department_employee") s with
        | Some r -> (
            match Relationship.participant_for (Name.v "employee") r with
            | Some p ->
                check Alcotest.string "(1,1)" "(1,1)"
                  (Cardinality.to_string p.Relationship.card)
            | None -> Alcotest.fail "employee missing")
        | None -> Alcotest.fail "missing arc");
    tc "virtual arc is (0,1) on the child" (fun () ->
        let s = Translate.Hierarchical.to_ecr hdb in
        match Schema.find_relationship (Name.v "project_task_v") s with
        | Some r -> (
            match Relationship.participant_for (Name.v "task") r with
            | Some p ->
                check Alcotest.string "(0,1)" "(0,1)"
                  (Cardinality.to_string p.Relationship.card)
            | None -> Alcotest.fail "task missing")
        | None -> Alcotest.fail "missing virtual arc");
    tc "sequence field becomes the key" (fun () ->
        let s = Translate.Hierarchical.to_ecr hdb in
        match Schema.find_object (Name.v "employee") s with
        | Some oc -> (
            match Attribute.find (Name.v "ssn") oc.Object_class.attributes with
            | Some a -> check Alcotest.bool "key" true a.Attribute.key
            | None -> Alcotest.fail "missing ssn")
        | None -> Alcotest.fail "missing employee");
    tc "missing parent raises" (fun () ->
        let bad =
          {
            Translate.Hierarchical.hdb_name = "bad";
            records = [ Translate.Hierarchical.record ~parent:"ghost" "r" [] ];
          }
        in
        match Translate.Hierarchical.to_ecr bad with
        | exception Translate.Hierarchical.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
    tc "translated schemas integrate (end-to-end sanity)" (fun () ->
        (* both translations feed the integration pipeline without
           modification, as section 4 of the paper proposes *)
        let rel = Translate.Relational.to_ecr payroll in
        let hier = Translate.Hierarchical.to_ecr hdb in
        let result, _ =
          Integrate.Protocol.run ~name:"fed" [ rel; hier ]
            (Integrate.Dda.of_assertion_list
               ~equivalences:
                 [
                   ( Qname.Attr.v "payroll" "emp" "ssn",
                     Qname.Attr.v "personnel" "employee" "ssn" );
                 ]
               [
                 ( Qname.v "payroll" "emp",
                   Integrate.Assertion.Equal,
                   Qname.v "personnel" "employee" );
               ])
        in
        check (Alcotest.list Alcotest.string) "valid integrated schema" []
          (List.map Schema.error_to_string
             (Schema.validate result.Integrate.Result.schema)))
  ]

let () =
  Alcotest.run "translate"
    [ ("relational", relational_tests); ("hierarchical", hierarchical_tests) ]
