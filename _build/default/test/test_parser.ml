(* Tests for the textual query/update syntax. *)

open Ecr
module V = Instance.Value

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let roundtrip_query src =
  (* parse, print, re-parse: ASTs must agree *)
  let q = Query.Parser.query_of_string src in
  let q' = Query.Parser.query_of_string (Query.Ast.to_string q) in
  check Alcotest.bool ("roundtrip: " ^ src) true (q = q')

let query_tests =
  [
    tc "select star" (fun () ->
        let q = Query.Parser.query_of_string "select * from Student" in
        check Alcotest.string "class" "Student" (Name.to_string q.Query.Ast.from_class);
        check Alcotest.int "no projection" 0 (List.length q.Query.Ast.select));
    tc "select attrs with where" (fun () ->
        let q =
          Query.Parser.query_of_string
            "select Name, GPA from Student where GPA >= 3.5"
        in
        check (Alcotest.list Alcotest.string) "attrs" [ "Name"; "GPA" ]
          (List.map Name.to_string q.Query.Ast.select);
        match q.Query.Ast.where with
        | Some (Query.Ast.Atom (a, Query.Ast.Ge, v)) ->
            check Alcotest.string "attr" "GPA" (Name.to_string a);
            check Alcotest.bool "value" true (V.equal v (V.real 3.5))
        | _ -> Alcotest.fail "expected a Ge atom");
    tc "boolean precedence: or binds looser than and" (fun () ->
        let q =
          Query.Parser.query_of_string
            "select * from S where a = 1 and b = 2 or c = 3"
        in
        match q.Query.Ast.where with
        | Some (Query.Ast.Or (Query.Ast.And _, Query.Ast.Atom _)) -> ()
        | _ -> Alcotest.fail "wrong precedence");
    tc "parentheses override precedence" (fun () ->
        let q =
          Query.Parser.query_of_string
            "select * from S where a = 1 and (b = 2 or c = 3)"
        in
        match q.Query.Ast.where with
        | Some (Query.Ast.And (Query.Ast.Atom _, Query.Ast.Or _)) -> ()
        | _ -> Alcotest.fail "wrong grouping");
    tc "not and <> operators" (fun () ->
        let q =
          Query.Parser.query_of_string "select * from S where not a <> 'x'"
        in
        match q.Query.Ast.where with
        | Some (Query.Ast.Not (Query.Ast.Atom (_, Query.Ast.Ne, _))) -> ()
        | _ -> Alcotest.fail "expected not/ne");
    tc "join projects relationship attributes via 'with'" (fun () ->
        let q =
          Query.Parser.query_of_string
            "select Name from Student via Majors with Since to Department"
        in
        match q.Query.Ast.via with
        | Some j ->
            check (Alcotest.list Alcotest.string) "rel attrs" [ "Since" ]
              (List.map Name.to_string j.Query.Ast.rel_select)
        | None -> Alcotest.fail "missing join");
    tc "join clause with target where" (fun () ->
        let q =
          Query.Parser.query_of_string
            "select Name from Student via Majors to Department select Name \
             target where Name = \"CS\" where GPA > 3"
        in
        match q.Query.Ast.via with
        | Some j ->
            check Alcotest.string "rel" "Majors" (Name.to_string j.Query.Ast.rel);
            check Alcotest.string "target" "Department"
              (Name.to_string j.Query.Ast.target);
            check Alcotest.bool "target where" true (j.Query.Ast.target_where <> None);
            check Alcotest.bool "outer where kept" true (q.Query.Ast.where <> None)
        | None -> Alcotest.fail "missing join");
    tc "value literals" (fun () ->
        check Alcotest.bool "int" true
          (V.equal (Query.Parser.value_of_string "42") (V.int 42));
        check Alcotest.bool "negative real" true
          (V.equal (Query.Parser.value_of_string "-2.5") (V.real (-2.5)));
        check Alcotest.bool "string" true
          (V.equal (Query.Parser.value_of_string "'hi'") (V.str "hi"));
        check Alcotest.bool "bool" true
          (V.equal (Query.Parser.value_of_string "true") (V.bool true));
        check Alcotest.bool "null" true
          (V.equal (Query.Parser.value_of_string "null") V.Null);
        check Alcotest.bool "date" true
          (V.equal (Query.Parser.value_of_string "'2020-09-01'") (V.date 2020 9 1)));
    tc "syntax errors raise" (fun () ->
        List.iter
          (fun src ->
            match Query.Parser.query_of_string src with
            | exception Query.Parser.Error _ -> ()
            | _ -> Alcotest.failf "accepted %S" src)
          [
            "";
            "select";
            "select * from";
            "select * from S where";
            "select * from S extra";
            "select * from S where a ==";
          ]);
    tc "parsed queries run" (fun () ->
        let st = Instance.Store.create Workload.Paper.sc1 in
        let st, _ =
          Instance.Store.insert (Name.v "Student")
            (Instance.Store.tuple [ ("Name", V.str "Ann"); ("GPA", V.real 3.9) ])
            st
        in
        let rows =
          Query.Eval.run
            (Query.Parser.query_of_string
               "select Name from Student where GPA >= 3.5")
            st
        in
        check Alcotest.int "one row" 1 (List.length rows));
    tc "print/parse round trips" (fun () ->
        List.iter roundtrip_query
          [
            "select * from Student";
            "select Name, GPA from Student where GPA >= 3.5";
            "select Name from Student via Majors to Department select Name";
            "select Name from Student via Majors with Since to Department";
            "select * from S where not (a = 1 or b = 2) and c <> 'x'";
          ]);
  ]

let update_tests =
  [
    tc "insert" (fun () ->
        match
          Query.Parser.update_of_string
            "insert into Student { Name = 'Ann', GPA = 3.9 }"
        with
        | Query.Update.Insert (cls, tuple) ->
            check Alcotest.string "class" "Student" (Name.to_string cls);
            check Alcotest.int "two values" 2 (Name.Map.cardinal tuple)
        | _ -> Alcotest.fail "expected insert");
    tc "delete with and without where" (fun () ->
        (match Query.Parser.update_of_string "delete from Student" with
        | Query.Update.Delete (_, None) -> ()
        | _ -> Alcotest.fail "expected bare delete");
        match
          Query.Parser.update_of_string "delete from Student where Name = 'Ann'"
        with
        | Query.Update.Delete (_, Some _) -> ()
        | _ -> Alcotest.fail "expected filtered delete");
    tc "update" (fun () ->
        match
          Query.Parser.update_of_string
            "update Student set GPA = 4.0, Name = 'A+' where GPA > 3.9"
        with
        | Query.Update.Modify (cls, Some _, assigns) ->
            check Alcotest.string "class" "Student" (Name.to_string cls);
            check Alcotest.int "two assignments" 2 (List.length assigns)
        | _ -> Alcotest.fail "expected modify");
    tc "parsed updates apply" (fun () ->
        let st = Instance.Store.create Workload.Paper.sc1 in
        let st, n =
          Query.Update.apply
            (Query.Parser.update_of_string
               "insert into Student { Name = 'Zoe', GPA = 3.0 }")
            st
        in
        check Alcotest.int "inserted" 1 n;
        let st, n =
          Query.Update.apply
            (Query.Parser.update_of_string
               "update Student set GPA = 3.5 where Name = 'Zoe'")
            st
        in
        check Alcotest.int "updated" 1 n;
        let _, n =
          Query.Update.apply
            (Query.Parser.update_of_string "delete from Student where GPA = 3.5")
            st
        in
        check Alcotest.int "deleted" 1 n);
    tc "update syntax errors raise" (fun () ->
        List.iter
          (fun src ->
            match Query.Parser.update_of_string src with
            | exception Query.Parser.Error _ -> ()
            | _ -> Alcotest.failf "accepted %S" src)
          [ "drop table x"; "insert into X"; "update X set" ]);
  ]

let cluster_tests =
  [
    tc "clusters partition the related classes" (fun () ->
        let q = Qname.v in
        let m =
          Integrate.Assertions.create [ Workload.Paper.sc1; Workload.Paper.sc2 ]
        in
        let m =
          List.fold_left
            (fun m (l, a, r) ->
              match Integrate.Assertions.add l a r m with
              | Ok m -> m
              | Error _ -> Alcotest.fail "fixture")
            m Workload.Paper.object_assertions
        in
        let clusters = Integrate.Cluster.of_assertions m in
        (* two clusters: the departments, and the student/faculty group *)
        check Alcotest.int "two clusters" 2 (List.length clusters);
        (match Integrate.Cluster.find (q "sc1" "Department") clusters with
        | Some members -> check Alcotest.int "departments" 2 (List.length members)
        | None -> Alcotest.fail "department cluster missing");
        match Integrate.Cluster.find (q "sc1" "Student") clusters with
        | Some members ->
            check Alcotest.int "students/faculty" 3 (List.length members)
        | None -> Alcotest.fail "student cluster missing");
    tc "nonintegrable pairs split clusters" (fun () ->
        let mk n cls =
          Schema.make (Name.v n)
            ~objects:[ Object_class.entity (Name.v cls) ]
            ~relationships:[]
        in
        let m = Integrate.Assertions.create [ mk "a" "X"; mk "b" "Y" ] in
        let m =
          match
            Integrate.Assertions.add (Qname.v "a" "X")
              Integrate.Assertion.Disjoint_nonintegrable (Qname.v "b" "Y") m
          with
          | Ok m -> m
          | Error _ -> Alcotest.fail "fixture"
        in
        check Alcotest.int "no clusters" 0
          (List.length (Integrate.Cluster.of_assertions m)));
    tc "of_edges ignores singletons" (fun () ->
        let q = Qname.v in
        let clusters =
          Integrate.Cluster.of_edges
            [ q "a" "X"; q "b" "Y"; q "c" "Z" ]
            [ (q "a" "X", q "b" "Y") ]
        in
        check Alcotest.int "one cluster" 1 (List.length clusters);
        check Alcotest.int "of two" 2 (List.length (List.hd clusters)));
  ]

let () =
  Alcotest.run "parser"
    [
      ("query-syntax", query_tests);
      ("update-syntax", update_tests);
      ("clusters", cluster_tests);
    ]
