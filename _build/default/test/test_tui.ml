(* Tests for the screen framework: canvas primitives, the twelve screen
   renderers (pinned against the paper's content) and the Figure 6
   screen-flow graph.  A full scripted session exercises the driver. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let has needle s = Util.contains ~needle s

let canvas_tests =
  [
    tc "create and dimensions" (fun () ->
        let c = Tui.Canvas.create 10 3 in
        check Alcotest.int "w" 10 (Tui.Canvas.width c);
        check Alcotest.int "h" 3 (Tui.Canvas.height c));
    tc "text and clipping" (fun () ->
        let c = Tui.Canvas.create 5 1 in
        Tui.Canvas.text c 2 0 "abcdef";
        check Alcotest.string "clipped" "  abc\n" (Tui.Canvas.to_string c));
    tc "out-of-bounds put is a no-op" (fun () ->
        let c = Tui.Canvas.create 3 1 in
        Tui.Canvas.put c (-1) 0 'x';
        Tui.Canvas.put c 0 5 'x';
        check Alcotest.string "blank" "\n" (Tui.Canvas.to_string c));
    tc "center and right alignment" (fun () ->
        let c = Tui.Canvas.create 11 2 in
        Tui.Canvas.text_center c 0 "abc";
        Tui.Canvas.text_right c 11 1 "xy";
        check (Alcotest.list Alcotest.string) "rows" [ "    abc"; "         xy" ]
          (Tui.Canvas.to_lines c));
    tc "frame draws the border" (fun () ->
        let c = Tui.Canvas.create 4 3 in
        Tui.Canvas.frame c;
        check (Alcotest.list Alcotest.string) "box" [ "+--+"; "|  |"; "+--+" ]
          (Tui.Canvas.to_lines c));
    tc "rows are trimmed for golden stability" (fun () ->
        let c = Tui.Canvas.create 10 1 in
        Tui.Canvas.text c 0 0 "a";
        check Alcotest.string "no trailing blanks" "a\n" (Tui.Canvas.to_string c));
  ]

let result = lazy (Workload.Paper.integrate_sc1_sc2 ())

let render f = Tui.Canvas.to_string (f ())

let screen_tests =
  [
    tc "Screen 1: main menu lists the six tasks" (fun () ->
        let s = render Tui.Screens.main_menu in
        check Alcotest.bool "title" true (has "SCHEMA INTEGRATION TOOL" s);
        List.iter
          (fun n -> check Alcotest.bool (string_of_int n) true (has (Printf.sprintf "%d - " n) s))
          [ 1; 2; 3; 4; 5; 6 ]);
    tc "Screen 2: schema names" (fun () ->
        let s =
          Tui.Canvas.to_string
            (Tui.Screens.schema_name_collection ~names:[ "sc1"; "sc2" ])
        in
        check Alcotest.bool "1> sc1" true (has "1> sc1" s);
        check Alcotest.bool "2> sc2" true (has "2> sc2" s));
    tc "Screen 3: structure rows match the paper" (fun () ->
        let s =
          Tui.Canvas.to_string (Tui.Screens.structure_information Workload.Paper.sc1)
        in
        check Alcotest.bool "header" true (has "Type(E/C/R)" s);
        check Alcotest.bool "student" true (has "1> Student" s);
        check Alcotest.bool "department" true (has "2> Department" s);
        check Alcotest.bool "majors" true (has "3> Majors" s));
    tc "Screen 4: relationship participants" (fun () ->
        let s =
          Tui.Canvas.to_string
            (Tui.Screens.relationship_information Workload.Paper.sc1
               (Ecr.Name.v "Majors"))
        in
        check Alcotest.bool "student" true (has "Student" s);
        check Alcotest.bool "card" true (has "(1,1)" s));
    tc "Screen 5: attribute rows match the paper" (fun () ->
        let s =
          Tui.Canvas.to_string
            (Tui.Screens.attribute_information Workload.Paper.sc1
               (Ecr.Name.v "Student"))
        in
        check Alcotest.bool "header" true
          (has "SCHEMA NAME: sc1   OBJECT NAME: Student   TYPE: e" s);
        check Alcotest.bool "name row" true (has "1> Name" s);
        check Alcotest.bool "gpa row" true (has "2> GPA" s));
    tc "Screen 6: object selection shows both columns" (fun () ->
        let s =
          Tui.Canvas.to_string
            (Tui.Screens.object_selection Workload.Paper.sc1 Workload.Paper.sc2)
        in
        check Alcotest.bool "sc1" true (has "SCHEMA: sc1" s);
        check Alcotest.bool "sc2" true (has "SCHEMA: sc2" s);
        check Alcotest.bool "faculty" true (has "Faculty" s));
    tc "Screen 7: equivalence class numbers" (fun () ->
        let eq =
          List.fold_left
            (fun acc (x, y) -> Integrate.Equivalence.declare x y acc)
            (Integrate.Equivalence.register_schema Workload.Paper.sc2
               (Integrate.Equivalence.register_schema Workload.Paper.sc1
                  Integrate.Equivalence.empty))
            Workload.Paper.equivalences
        in
        let s =
          Tui.Canvas.to_string
            (Tui.Screens.equivalence_classes eq
               (Workload.Paper.sc1, Ecr.Name.v "Student")
               (Workload.Paper.sc2, Ecr.Name.v "Grad_student"))
        in
        check Alcotest.bool "header" true (has "Eq_class #" s);
        check Alcotest.bool "both objects" true
          (has "(sc1.Student)" s && has "(sc2.Grad_student)" s));
    tc "Screen 8: ratios printed with four decimals" (fun () ->
        let eq =
          List.fold_left
            (fun acc (x, y) -> Integrate.Equivalence.declare x y acc)
            (Integrate.Equivalence.register_schema Workload.Paper.sc2
               (Integrate.Equivalence.register_schema Workload.Paper.sc1
                  Integrate.Equivalence.empty))
            Workload.Paper.equivalences
        in
        let ranked =
          Integrate.Similarity.ranked_object_pairs Workload.Paper.sc1
            Workload.Paper.sc2 eq
        in
        let s =
          Tui.Canvas.to_string (Tui.Screens.assertion_collection ~answered:[] ranked)
        in
        check Alcotest.bool "0.5000" true (has "0.5000" s);
        check Alcotest.bool "0.3333" true (has "0.3333" s);
        check Alcotest.bool "menu" true (has "1 - OB_CL_name_1 'equals' OB_CL_name_2" s);
        check Alcotest.bool "code 0 listed" true
          (has "0 - OB_CL_name_1 and OB_CL_name_2 are disjoint & non-integratable" s));
    tc "Screen 9: conflict shows derivation basis" (fun () ->
        let q = Ecr.Qname.v in
        let m =
          Integrate.Assertions.create [ Workload.Paper.sc3; Workload.Paper.sc4 ]
        in
        let m =
          match
            Integrate.Assertions.add (q "sc3" "Instructor")
              Integrate.Assertion.Contained_in (q "sc4" "Grad_student") m
          with
          | Ok m -> m
          | Error _ -> Alcotest.fail "fixture conflict"
        in
        match
          Integrate.Assertions.add (q "sc3" "Instructor")
            Integrate.Assertion.Disjoint_nonintegrable (q "sc4" "Student") m
        with
        | Ok _ -> Alcotest.fail "expected conflict"
        | Error c ->
            let s = Tui.Canvas.to_string (Tui.Screens.conflict_resolution c) in
            check Alcotest.bool "derived marker" true (has "<derived>(CONFLICT)" s);
            check Alcotest.bool "new marker" true (has "<new>(CONFLICT)" s);
            check Alcotest.bool "basis row" true (has "sc4.Grad_student" s));
    tc "Screen 10: object class screen counts" (fun () ->
        let s = Tui.Canvas.to_string (Tui.Screens.object_class_screen (Lazy.force result)) in
        check Alcotest.bool "entities(2)" true (has "Entities(2)" s);
        check Alcotest.bool "categories(3)" true (has "Categories(3)" s);
        check Alcotest.bool "relationships(2)" true (has "Relationships(2)" s);
        check Alcotest.bool "E_Department" true (has "E_Department" s);
        check Alcotest.bool "E_Stud_Majo" true (has "E_Stud_Majo" s));
    tc "Screen 11: category screen for Student" (fun () ->
        let s =
          Tui.Canvas.to_string
            (Tui.Screens.category_screen (Lazy.force result) (Ecr.Name.v "Student"))
        in
        check Alcotest.bool "parent count" true (has "Parent Object(1)" s);
        check Alcotest.bool "parent" true (has "D_Stud_Facu (e)" s);
        check Alcotest.bool "child" true (has "Grad_student (c)" s));
    tc "Screen 12: component attribute screens" (fun () ->
        let r = Lazy.force result in
        let schemas = [ Workload.Paper.sc1; Workload.Paper.sc2 ] in
        let s0 =
          Tui.Canvas.to_string
            (Tui.Screens.component_attribute_screen ~schemas r
               (Ecr.Name.v "Student") (Ecr.Name.v "D_GPA") ~index:0)
        in
        check Alcotest.bool "first component" true
          (has "original Schema Name" s0 && has ": sc1" s0 && has ": Student" s0);
        let s1 =
          Tui.Canvas.to_string
            (Tui.Screens.component_attribute_screen ~schemas r
               (Ecr.Name.v "Student") (Ecr.Name.v "D_GPA") ~index:1)
        in
        check Alcotest.bool "second component" true
          (has ": sc2" s1 && has ": Grad_student" s1));
    tc "Equivalent screen lists merged components" (fun () ->
        let s =
          Tui.Canvas.to_string
            (Tui.Screens.equivalent_screen (Lazy.force result)
               (Ecr.Name.v "E_Department"))
        in
        check Alcotest.bool "both" true (has "sc1.Department" s && has "sc2.Department" s));
    tc "Participating objects screen" (fun () ->
        let s =
          Tui.Canvas.to_string
            (Tui.Screens.participating_objects_screen (Lazy.force result)
               (Ecr.Name.v "E_Stud_Majo"))
        in
        check Alcotest.bool "student" true (has "Student" s);
        check Alcotest.bool "department" true (has "E_Department" s));
    tc "every screen fits 80x24" (fun () ->
        let r = Lazy.force result in
        let canvases =
          [
            Tui.Screens.main_menu ();
            Tui.Screens.structure_information Workload.Paper.sc1;
            Tui.Screens.object_class_screen r;
            Tui.Screens.category_screen r (Ecr.Name.v "Student");
          ]
        in
        List.iter
          (fun c ->
            check Alcotest.int "80 wide" 80 (Tui.Canvas.width c);
            check Alcotest.int "24 tall" 24 (Tui.Canvas.height c);
            List.iter
              (fun line -> check Alcotest.bool "fits" true (String.length line <= 80))
              (Tui.Canvas.to_lines c))
          canvases);
  ]

let flow_tests =
  [
    tc "Figure 6: all screens reachable from Object Class" (fun () ->
        check Alcotest.int "eight screens" 8
          (List.length (Tui.Flow.reachable_from Tui.Flow.Object_class)));
    tc "arcs are deterministic per choice" (fun () ->
        List.iter
          (fun screen ->
            let labels = List.map fst (Tui.Flow.successors screen) in
            check Alcotest.bool "no duplicate labels" true
              (List.length labels = List.length (List.sort_uniq compare labels)))
          Tui.Flow.all_screens);
    tc "the paper's arcs" (fun () ->
        check Alcotest.bool "OC --C--> Category" true
          (Tui.Flow.next Tui.Flow.Object_class "C" = Some Tui.Flow.Category);
        check Alcotest.bool "Rel --p--> Participating" true
          (Tui.Flow.next Tui.Flow.Relationship "p" = Some Tui.Flow.Participating);
        check Alcotest.bool "bad choice" true
          (Tui.Flow.next Tui.Flow.Entity "z" = None));
    tc "every non-root screen can return" (fun () ->
        List.iter
          (fun screen ->
            if screen <> Tui.Flow.Object_class then
              check Alcotest.bool "has q" true
                (Tui.Flow.next screen "q" <> None))
          Tui.Flow.all_screens);
    tc "to_dot emits every arc" (fun () ->
        let dot = Tui.Flow.to_dot () in
        check Alcotest.bool "label e" true (has "label=\"e\"" dot);
        check Alcotest.bool "category node" true (has "Category Screen" dot));
  ]

let session_tests =
  [
    tc "scripted schema collection builds a schema" (fun () ->
        let script =
          [
            "1"; "a"; "demo"; "a"; "Person"; "e"; "a"; "Ssn : char key"; "e";
            "e"; "e"; "e";
          ]
        in
        let io, _ = Tui.Session.scripted script in
        let ws = Tui.Session.run io in
        match Integrate.Workspace.find_schema (Ecr.Name.v "demo") ws with
        | Some s ->
            check Alcotest.int "one structure" 1 (Ecr.Schema.size s);
            check Alcotest.bool "person exists" true
              (Ecr.Schema.mem (Ecr.Name.v "Person") s)
        | None -> Alcotest.fail "schema not collected");
    tc "running out of script exits cleanly" (fun () ->
        let io, _ = Tui.Session.scripted [ "1"; "a"; "demo" ] in
        let ws = Tui.Session.run io in
        check Alcotest.bool "workspace returned" true
          (Integrate.Workspace.schemas ws <> []));
    tc "view_result navigates the flow" (fun () ->
        let io, buf =
          Tui.Session.scripted [ "C Student"; "q"; "E E_Department"; "e"; "x" ]
        in
        Tui.Session.view_result io
          ~schemas:[ Workload.Paper.sc1; Workload.Paper.sc2 ]
          (Lazy.force result);
        let out = Buffer.contents buf in
        check Alcotest.bool "category screen shown" true (has "Category Screen" out);
        check Alcotest.bool "equivalent screen shown" true (has "Equivalent Screen" out));
    tc "invalid inputs do not crash the driver" (fun () ->
        let io, _ =
          Tui.Session.scripted [ "zz"; "1"; "a"; "9bad"; "e"; "6"; "e" ]
        in
        let ws = Tui.Session.run io in
        check Alcotest.bool "survived" true (Integrate.Workspace.schemas ws = []));
    tc "analysis command reports issues" (fun () ->
        let ws =
          Integrate.Workspace.(
            add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
        in
        let io, buf = Tui.Session.scripted [ "a"; "e" ] in
        let _ = Tui.Session.run ~workspace:ws io in
        check Alcotest.bool "homonyms shown" true
          (has "homonym" (Buffer.contents buf)));
    tc "task 6 can integrate a pair out of three schemas" (fun () ->
        let ws =
          Integrate.Workspace.(
            add_schema Workload.Paper.sc3
              (add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty)))
        in
        let io, buf =
          Tui.Session.scripted [ "6"; "p"; "sc1"; "sc2"; "x"; "e" ]
        in
        let _ = Tui.Session.run ~workspace:ws io in
        let out = Buffer.contents buf in
        check Alcotest.bool "object class screen shown" true
          (has "Object Class Screen" out);
        (* sc3's Instructor is not part of the pair integration *)
        check Alcotest.bool "instructor absent" false (has "Instructor" out));
  ]

let () =
  Alcotest.run "tui"
    [
      ("canvas", canvas_tests);
      ("screens", screen_tests);
      ("flow", flow_tests);
      ("session", session_tests);
    ]
