(* Property-based tests (QCheck, registered as alcotest cases).

   The heart of the suite: the assertion algebra is tested against its
   set-theoretic semantics on random finite extents, the matrix is shown
   never to reject truthful assertion sequences, integration invariants
   are checked on random generated workloads, and query rewriting is
   shown answer-preserving on random selections. *)

open Ecr
open Integrate

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Random finite extents over a small universe.                        *)

let extent_gen =
  (* non-empty subsets of 0..7, so relations of every kind occur often *)
  QCheck.Gen.(
    map
      (fun bits -> List.filter (fun i -> (bits lsr i) land 1 = 1) [ 0; 1; 2; 3; 4; 5; 6; 7 ])
      (int_range 1 255))

let extent = QCheck.make ~print:(fun l -> QCheck.Print.(list int) l) extent_gen

let rel_algebra_props =
  [
    qtest "composition table is sound for set semantics"
      QCheck.(triple extent extent extent)
      (fun (a, b, c) ->
        let r_ab = Rel.basic_of_extents Int.equal a b in
        let r_bc = Rel.basic_of_extents Int.equal b c in
        let r_ac = Rel.basic_of_extents Int.equal a c in
        Rel.mem r_ac (Rel.compose_basic r_ab r_bc));
    qtest "converse agrees with swapping the extents"
      QCheck.(pair extent extent)
      (fun (a, b) ->
        let r_ab = Rel.basic_of_extents Int.equal a b in
        let r_ba = Rel.basic_of_extents Int.equal b a in
        Rel.equal (Rel.of_basic r_ba) (Rel.converse (Rel.of_basic r_ab)));
    qtest "exactly one basic relation holds"
      QCheck.(pair extent extent)
      (fun (a, b) ->
        let r = Rel.basic_of_extents Int.equal a b in
        Rel.cardinal (Rel.of_basic r) = 1);
    qtest "intersection with the truth is never empty"
      QCheck.(triple extent extent extent)
      (fun (a, b, c) ->
        (* any chain of compositions keeps the true relation inside *)
        let r_ab = Rel.of_basic (Rel.basic_of_extents Int.equal a b) in
        let r_bc = Rel.of_basic (Rel.basic_of_extents Int.equal b c) in
        let truth = Rel.of_basic (Rel.basic_of_extents Int.equal a c) in
        not (Rel.is_empty (Rel.inter (Rel.compose r_ab r_bc) truth)));
  ]

(* ------------------------------------------------------------------ *)
(* Truthful assertion sequences are always accepted.                   *)

(* Generate k classes with random extents, declare a random subset of
   the true pairwise assertions in random order: the matrix must accept
   every one of them (they are simultaneously satisfiable by
   construction). *)
let truthful_session_gen =
  QCheck.Gen.(
    let* k = int_range 3 6 in
    let* extents = list_repeat k extent_gen in
    let* order = shuffle_l (List.init k Fun.id) in
    let* keep = list_repeat (k * k) bool in
    return (extents, order, keep))

let truthful_session =
  QCheck.make
    ~print:(fun (extents, _, _) -> QCheck.Print.(list (list int)) extents)
    truthful_session_gen

let assertion_of_extents a b =
  match Rel.basic_of_extents Int.equal a b with
  | Rel.Eq -> Assertion.Equal
  | Rel.Lt -> Assertion.Contained_in
  | Rel.Gt -> Assertion.Contains
  | Rel.Ov -> Assertion.May_be
  | Rel.Dj -> Assertion.Disjoint_integrable

let matrix_props =
  [
    qtest ~count:100 "truthful sessions never conflict" truthful_session
      (fun (extents, order, keep) ->
        let k = List.length extents in
        let schemas =
          List.init k (fun i ->
              Schema.make
                (Name.v (Printf.sprintf "s%d" i))
                ~objects:[ Object_class.entity (Name.v "C") ]
                ~relationships:[])
        in
        let cls i = Qname.v (Printf.sprintf "s%d" i) "C" in
        let ext i = List.nth extents i in
        let pairs =
          List.concat_map
            (fun i -> List.filter_map (fun j -> if i < j then Some (i, j) else None) order)
            order
        in
        let pairs =
          List.filteri (fun idx _ -> List.nth keep (idx mod List.length keep)) pairs
        in
        let rec apply m = function
          | [] -> true
          | (i, j) :: rest -> (
              match
                Assertions.add (cls i)
                  (assertion_of_extents (ext i) (ext j))
                  (cls j) m
              with
              | Ok m -> apply m rest
              | Error _ -> false)
        in
        apply (Assertions.create schemas) pairs);
    qtest ~count:100 "derived singletons are true" truthful_session
      (fun (extents, order, _) ->
        (* assert the full truth along a chain, then check that every
           derived singleton cell matches the extent relation *)
        ignore order;
        let k = List.length extents in
        let schemas =
          List.init k (fun i ->
              Schema.make
                (Name.v (Printf.sprintf "s%d" i))
                ~objects:[ Object_class.entity (Name.v "C") ]
                ~relationships:[])
        in
        let cls i = Qname.v (Printf.sprintf "s%d" i) "C" in
        let ext i = List.nth extents i in
        let m =
          List.fold_left
            (fun m i ->
              match
                Assertions.add (cls i)
                  (assertion_of_extents (ext i) (ext (i + 1)))
                  (cls (i + 1)) m
              with
              | Ok m -> m
              | Error _ -> m)
            (Assertions.create schemas)
            (List.init (k - 1) Fun.id)
        in
        List.for_all
          (fun (l, r, derived) ->
            let index q =
              let n = Name.to_string q.Qname.schema in
              int_of_string (String.sub n 1 (String.length n - 1))
            in
            let i = index l and j = index r in
            let truth = Rel.basic_of_extents Int.equal (ext i) (ext j) in
            Rel.mem truth (Rel.of_assertion derived))
          (Assertions.derived_assertions m));
  ]

(* ------------------------------------------------------------------ *)
(* Integration invariants on random workloads.                         *)

let params_gen =
  QCheck.Gen.(
    let* seed = int_range 0 10_000 in
    let* concepts = int_range 6 16 in
    let* coverage = float_range 0.5 1.0 in
    let* noise = float_range 0.0 0.5 in
    return
      {
        Workload.Generator.default_params with
        seed;
        concepts;
        coverage;
        naming_noise = noise;
        population = 120;
      })

let params =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "seed=%d concepts=%d coverage=%f noise=%f"
        p.Workload.Generator.seed p.Workload.Generator.concepts
        p.Workload.Generator.coverage p.Workload.Generator.naming_noise)
    params_gen

let run_workload p =
  let w = Workload.Generator.generate p in
  let result, _ = Protocol.run w.Workload.Generator.schemas w.Workload.Generator.oracle in
  (w, result)

let integration_props =
  [
    qtest ~count:40 "integrated schemas always validate" params
      (fun p ->
        let _, result = run_workload p in
        Schema.validate result.Result.schema = []);
    qtest ~count:40 "every component class is mapped" params
      (fun p ->
        let w, result = run_workload p in
        List.for_all
          (fun s ->
            List.for_all
              (fun oc ->
                Mapping.object_entry (Schema.qname s oc.Object_class.name)
                  result.Result.mapping
                <> None)
              (Schema.objects s))
          w.Workload.Generator.schemas);
    qtest ~count:40 "every component attribute lands exactly once" params
      (fun p ->
        let w, result = run_workload p in
        List.for_all
          (fun s ->
            List.for_all
              (fun oc ->
                List.for_all
                  (fun (a : Attribute.t) ->
                    let qa =
                      Qname.Attr.make
                        (Schema.qname s oc.Object_class.name)
                        a.Attribute.name
                    in
                    let occurrences =
                      Name.Map.fold
                        (fun _ attrs acc ->
                          Name.Map.fold
                            (fun _ comps acc ->
                              acc
                              + List.length
                                  (List.filter (Qname.Attr.equal qa) comps))
                            attrs acc)
                        result.Result.attr_components 0
                    in
                    occurrences = 1)
                  oc.Object_class.attributes)
              (Schema.objects s))
          w.Workload.Generator.schemas);
    qtest ~count:40 "true equal pairs end up in the same integrated class"
      params
      (fun p ->
        let w, result = run_workload p in
        List.for_all
          (fun (a, b) ->
            Mapping.object_target a result.Result.mapping
            = Mapping.object_target b result.Result.mapping)
          w.Workload.Generator.true_pairs);
    qtest ~count:25 "migrated instances satisfy ECR integrity" params
      (fun p ->
        let w, result = run_workload p in
        let stores = Workload.Generator.populate w in
        let merged, _ =
          Query.Migrate.run result.Result.mapping
            ~integrated:result.Result.schema stores
        in
        Instance.Store.check merged = []);
    qtest ~count:25 "view selections survive rewriting onto the instance"
      params
      (fun p ->
        (* The translated query runs over the integrated extent, which
           may legitimately be broader than the view's (e.g. when the
           class was asserted to *contain* another view's class), so the
           property is multiset containment: every view answer appears
           at least as often among the integrated answers. *)
        let multiset_subset small big =
          let count rows r =
            List.length (List.filter (fun r' -> Name.Map.equal Instance.Value.equal r r') rows)
          in
          List.for_all (fun r -> count small r <= count big r) small
        in
        let w, result = run_workload p in
        let stores = Workload.Generator.populate w in
        let merged, _ =
          Query.Migrate.run result.Result.mapping
            ~integrated:result.Result.schema stores
        in
        List.for_all
          (fun (s, st) ->
            List.for_all
              (fun oc ->
                let view_q =
                  Query.Ast.query (Name.to_string oc.Object_class.name)
                in
                let q', back =
                  Query.Rewrite.to_integrated result.Result.mapping ~view:s
                    view_q
                in
                multiset_subset (Query.Eval.run view_q st)
                  (back (Query.Eval.run q' merged)))
              (Schema.objects s))
          stores);
  ]

(* ------------------------------------------------------------------ *)
(* Miscellaneous data-structure properties.                            *)

let ident_gen =
  QCheck.Gen.(
    map
      (fun (c, rest) ->
        String.make 1 c ^ String.concat "" (List.map (String.make 1) rest))
      (pair (char_range 'a' 'z') (small_list (char_range 'a' 'z'))))

let ident = QCheck.make ~print:Fun.id ident_gen

let misc_props =
  [
    qtest "levenshtein is symmetric" (QCheck.pair ident ident) (fun (a, b) ->
        Heuristics.Strings.levenshtein a b = Heuristics.Strings.levenshtein b a);
    qtest "levenshtein triangle inequality"
      (QCheck.triple ident ident ident)
      (fun (a, b, c) ->
        Heuristics.Strings.levenshtein a c
        <= Heuristics.Strings.levenshtein a b + Heuristics.Strings.levenshtein b c);
    qtest "similarity scores stay in the unit interval"
      (QCheck.pair ident ident)
      (fun (a, b) ->
        let checks =
          [
            Heuristics.Strings.levenshtein_similarity a b;
            Heuristics.Strings.dice_bigrams a b;
            Heuristics.Strings.jaro a b;
            Heuristics.Strings.jaro_winkler a b;
            Heuristics.Strings.token_overlap a b;
            Heuristics.Strings.name_similarity a b;
          ]
        in
        List.for_all (fun x -> x >= 0.0 && x <= 1.0 +. 1e-9) checks);
    qtest "cardinality union includes both operands"
      (QCheck.pair (QCheck.make QCheck.Gen.(pair (int_range 0 3) (int_range 1 5)))
         (QCheck.make QCheck.Gen.(pair (int_range 0 3) (int_range 1 5))))
      (fun ((a1, a2), (b1, b2)) ->
        QCheck.assume (a1 <= a2 && b1 <= b2);
        let ca = Cardinality.make a1 (Cardinality.Finite a2)
        and cb = Cardinality.make b1 (Cardinality.Finite b2) in
        let u = Cardinality.union ca cb in
        Cardinality.includes u ca && Cardinality.includes u cb);
    qtest ~count:60 "DDL round-trips on generated schemas" params (fun p ->
        let w = Workload.Generator.generate p in
        List.for_all
          (fun s ->
            Schema.equal s (Ddl.Parser.schema_of_string (Ddl.Printer.to_string s)))
          w.Workload.Generator.schemas);
    qtest "equivalence declare is idempotent and symmetric"
      (QCheck.pair ident ident)
      (fun (x, y) ->
        QCheck.assume (Name.is_valid x && Name.is_valid y);
        let qa = Qname.Attr.v "s" "A" x and qb = Qname.Attr.v "t" "B" y in
        let eq1 = Equivalence.declare qa qb Equivalence.empty in
        let eq2 = Equivalence.declare qb qa (Equivalence.declare qa qb Equivalence.empty) in
        Equivalence.equivalent qa qb eq1
        && Equivalence.equivalent qa qb eq2
        && Equivalence.class_of qa eq1 = Equivalence.class_of qa eq2);
  ]

(* ------------------------------------------------------------------ *)
(* Persistence round-trips on generated workloads.                     *)

let persistence_props =
  [
    qtest ~count:30 "dictionary round-trips generated sessions" params
      (fun p ->
        let w = Workload.Generator.generate p in
        (* record a session through the workspace *)
        let ws =
          List.fold_left
            (fun ws s -> Workspace.add_schema s ws)
            Workspace.empty w.Workload.Generator.schemas
        in
        let ws =
          (* declare the true attribute equivalences for every same-concept
             class pair *)
          List.fold_left
            (fun ws (c1, c2) ->
              let attrs q =
                match
                  List.find_opt
                    (fun s -> Name.equal (Schema.name s) q.Qname.schema)
                    w.Workload.Generator.schemas
                with
                | Some s -> (
                    match Schema.find_object q.Qname.obj s with
                    | Some oc ->
                        List.map
                          (fun (at : Attribute.t) ->
                            Qname.Attr.make q at.Attribute.name)
                          oc.Object_class.attributes
                    | None -> [])
                | None -> []
              in
              List.fold_left
                (fun ws qa1 ->
                  List.fold_left
                    (fun ws qa2 ->
                      match
                        ( w.Workload.Generator.attr_id qa1,
                          w.Workload.Generator.attr_id qa2 )
                      with
                      | Some x, Some y when x = y ->
                          Workspace.declare_equivalent qa1 qa2 ws
                      | _ -> ws)
                    ws (attrs c2))
                ws (attrs c1))
            ws w.Workload.Generator.true_pairs
        in
        let ws =
          List.fold_left
            (fun ws (l, r, a) ->
              match Workspace.assert_object l a r ws with
              | Ok ws -> ws
              | Error _ -> ws)
            ws w.Workload.Generator.related_pairs
        in
        let ws' = Dictionary.of_string (Dictionary.to_string ws) in
        List.length (Workspace.schemas ws) = List.length (Workspace.schemas ws')
        && List.length (Workspace.object_facts ws)
           = List.length (Workspace.object_facts ws')
        && Schema.equal (Workspace.integrate ws).Result.schema
             (Workspace.integrate ws').Result.schema);
    qtest ~count:30 "instance text round-trips populated stores" params
      (fun p ->
        let w = Workload.Generator.generate p in
        List.for_all
          (fun (schema, st) ->
            let text = Instance.Loader.to_string schema st in
            match Instance.Loader.load_string ~schemas:[ schema ] text with
            | [ (_, st') ] ->
                List.for_all
                  (fun oc ->
                    let q = Query.Ast.query (Name.to_string oc.Object_class.name) in
                    Query.Eval.same_answers (Query.Eval.run q st)
                      (Query.Eval.run q st'))
                  (Schema.objects schema)
            | _ -> false)
          (Workload.Generator.populate w));
    qtest ~count:50 "matrix propagation is idempotent" truthful_session
      (fun (extents, _, _) ->
        let k = List.length extents in
        let schemas =
          List.init k (fun i ->
              Schema.make
                (Name.v (Printf.sprintf "s%d" i))
                ~objects:[ Object_class.entity (Name.v "C") ]
                ~relationships:[])
        in
        let cls i = Qname.v (Printf.sprintf "s%d" i) "C" in
        let ext i = List.nth extents i in
        let m =
          List.fold_left
            (fun m i ->
              match
                Assertions.add (cls i)
                  (assertion_of_extents (ext i) (ext (i + 1)))
                  (cls (i + 1)) m
              with
              | Ok m -> m
              | Error _ -> m)
            (Assertions.create schemas)
            (List.init (k - 1) Fun.id)
        in
        (* re-adding every determined cell's assertion changes nothing *)
        List.for_all
          (fun (l, r, a) ->
            match Assertions.add l a r m with
            | Ok m' ->
                Assertions.asserted_count m' = Assertions.asserted_count m
                && Assertions.derived_count m' = Assertions.derived_count m
            | Error _ -> false)
          (Assertions.derived_assertions m));
  ]

(* ------------------------------------------------------------------ *)
(* Update-translation properties on generated workloads.               *)

let update_props =
  [
    qtest ~count:20 "translated inserts become visible to the view's query"
      params
      (fun p ->
        let w, result = run_workload p in
        let stores = Workload.Generator.populate w in
        let merged, _ =
          Query.Migrate.run result.Result.mapping
            ~integrated:result.Result.schema stores
        in
        List.for_all
          (fun (s, _) ->
            List.for_all
              (fun oc ->
                (* insert a fresh entity through the view mapping using
                   its key attribute, then query it back *)
                match Attribute.keys oc.Object_class.attributes with
                | key :: _ ->
                    let marker =
                      Instance.Value.Str
                        ("fresh_"
                        ^ Name.to_string (Schema.name s)
                        ^ "_"
                        ^ Name.to_string oc.Object_class.name)
                    in
                    let op =
                      Query.Update.Insert
                        ( oc.Object_class.name,
                          Name.Map.singleton key.Attribute.name marker )
                    in
                    let op' =
                      Query.Update.to_integrated result.Result.mapping ~view:s op
                    in
                    let merged, n = Query.Update.apply op' merged in
                    let view_q =
                      {
                        Query.Ast.from_class = oc.Object_class.name;
                        where =
                          Some (Query.Ast.Atom (key.Attribute.name, Query.Ast.Eq, marker));
                        select = [ key.Attribute.name ];
                        via = None;
                      }
                    in
                    let q', back =
                      Query.Rewrite.to_integrated result.Result.mapping ~view:s
                        view_q
                    in
                    n = 1 && List.length (back (Query.Eval.run q' merged)) = 1
                | [] -> true)
              (Schema.objects s))
          stores);
    qtest ~count:20 "translated unfiltered deletes empty the view's extent"
      params
      (fun p ->
        let w, result = run_workload p in
        let stores = Workload.Generator.populate w in
        let merged, _ =
          Query.Migrate.run result.Result.mapping
            ~integrated:result.Result.schema stores
        in
        match stores with
        | (s, _) :: _ ->
            List.for_all
              (fun oc ->
                let op = Query.Update.Delete (oc.Object_class.name, None) in
                let op' =
                  Query.Update.to_integrated result.Result.mapping ~view:s op
                in
                let merged, _ = Query.Update.apply op' merged in
                let view_q = Query.Ast.query (Name.to_string oc.Object_class.name) in
                let q', back =
                  Query.Rewrite.to_integrated result.Result.mapping ~view:s view_q
                in
                back (Query.Eval.run q' merged) = [])
              (Schema.objects s)
        | [] -> true);
  ]

let () =
  Alcotest.run "properties"
    [
      ("rel-algebra", rel_algebra_props);
      ("matrix", matrix_props);
      ("integration", integration_props);
      ("misc", misc_props);
      ("persistence", persistence_props);
      ("updates", update_props);
    ]
