(* Tests for the extensional (instance) substrate. *)

open Ecr
module S = Instance.Store
module V = Instance.Value

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* Person <- Student (category); Advises(Person 0..N, Student 1..1). *)
let schema =
  Schema.make (Name.v "s")
    ~objects:
      [
        Object_class.entity
          ~attrs:[ Attribute.v ~key:true "Ssn" "char"; Attribute.v "Age" "int" ]
          (Name.v "Person");
        Object_class.category
          ~attrs:[ Attribute.v "GPA" "real" ]
          ~parents:[ Name.v "Person" ] (Name.v "Student");
      ]
    ~relationships:
      [
        Relationship.binary (Name.v "Advises")
          (Name.v "Person", Cardinality.any)
          (Name.v "Student", Cardinality.exactly_one);
      ]

let value_tests =
  [
    tc "conformance" (fun () ->
        check Alcotest.bool "str/char" true (V.conforms (V.str "x") Domain.Char_string);
        check Alcotest.bool "int/real widen" true (V.conforms (V.int 3) Domain.Real);
        check Alcotest.bool "real/int no" false (V.conforms (V.real 3.5) Domain.Integer);
        check Alcotest.bool "null anywhere" true (V.conforms V.Null Domain.Date);
        check Alcotest.bool "enum member" true
          (V.conforms (V.str "RA") (Domain.Enum [ "RA"; "TA" ]));
        check Alcotest.bool "enum outsider" false
          (V.conforms (V.str "GSR") (Domain.Enum [ "RA"; "TA" ]));
        check Alcotest.bool "bad date" false (V.conforms (V.date 2000 13 1) Domain.Date));
    tc "coerce" (fun () ->
        check Alcotest.bool "int->real" true
          (V.coerce (V.int 2) Domain.Real = Some (V.real 2.));
        check Alcotest.bool "whole real->int" true
          (V.coerce (V.real 2.) Domain.Integer = Some (V.int 2));
        check Alcotest.bool "frac real->int" true
          (V.coerce (V.real 2.5) Domain.Integer = None));
    tc "numeric comparison crosses int/real" (fun () ->
        check Alcotest.bool "eq" true (V.equal (V.int 2) (V.real 2.));
        check Alcotest.int "lt" (-1) (V.compare (V.int 1) (V.real 1.5)));
    tc "to_string" (fun () ->
        check Alcotest.string "date" "2020-09-01" (V.to_string (V.date 2020 9 1));
        check Alcotest.string "null" "null" (V.to_string V.Null));
  ]

let store_tests =
  [
    tc "insert into category propagates to ancestors" (fun () ->
        let st = S.create schema in
        let st, oid = S.insert (Name.v "Student") (S.tuple [ ("Ssn", V.str "1") ]) st in
        check Alcotest.bool "in Student" true
          (S.Oid.Set.mem oid (S.extent (Name.v "Student") st));
        check Alcotest.bool "in Person" true
          (S.Oid.Set.mem oid (S.extent (Name.v "Person") st)));
    tc "extent of parent includes descendants only" (fun () ->
        let st = S.create schema in
        let st, p = S.insert (Name.v "Person") (S.tuple [ ("Ssn", V.str "1") ]) st in
        let st, s = S.insert (Name.v "Student") (S.tuple [ ("Ssn", V.str "2") ]) st in
        check Alcotest.int "person extent" 2 (S.cardinality_of (Name.v "Person") st);
        check Alcotest.int "student extent" 1 (S.cardinality_of (Name.v "Student") st);
        check Alcotest.bool "p not student" false
          (S.Oid.Set.mem p (S.extent (Name.v "Student") st));
        ignore s);
    tc "classify adds membership" (fun () ->
        let st = S.create schema in
        let st, p = S.insert (Name.v "Person") (S.tuple [ ("Ssn", V.str "1") ]) st in
        let st = S.classify p (Name.v "Student") st in
        check Alcotest.bool "now student" true
          (S.Oid.Set.mem p (S.extent (Name.v "Student") st)));
    tc "unknown class raises" (fun () ->
        let st = S.create schema in
        match S.insert (Name.v "Ghost") Name.Map.empty st with
        | exception S.Violation _ -> ()
        | _ -> Alcotest.fail "expected violation");
    tc "set_value and value" (fun () ->
        let st = S.create schema in
        let st, p = S.insert (Name.v "Person") Name.Map.empty st in
        let st = S.set_value p (Name.v "Age") (V.int 30) st in
        check Alcotest.bool "age" true (V.equal (V.int 30) (S.value p (Name.v "Age") st));
        check Alcotest.bool "unset is null" true
          (V.equal V.Null (S.value p (Name.v "Ssn") st)));
    tc "relate arity mismatch raises" (fun () ->
        let st = S.create schema in
        let st, p = S.insert (Name.v "Person") Name.Map.empty st in
        match S.relate (Name.v "Advises") [ p ] Name.Map.empty st with
        | exception S.Violation _ -> ()
        | _ -> Alcotest.fail "expected violation");
    tc "classes_of reports placements" (fun () ->
        let st = S.create schema in
        let st, p = S.insert (Name.v "Student") Name.Map.empty st in
        check (Alcotest.slist Alcotest.string String.compare) "both"
          [ "Person"; "Student" ]
          (List.map Name.to_string (S.classes_of p st)));
  ]

let integrity_tests =
  [
    tc "clean store" (fun () ->
        let st = S.create schema in
        let st, p = S.insert (Name.v "Person") (S.tuple [ ("Ssn", V.str "1"); ("Age", V.int 20) ]) st in
        let st, s =
          S.insert (Name.v "Student")
            (S.tuple [ ("Ssn", V.str "2"); ("GPA", V.real 3.0) ])
            st
        in
        let st = S.relate (Name.v "Advises") [ p; s ] Name.Map.empty st in
        check Alcotest.int "no violations" 0 (List.length (S.check st)));
    tc "bad domain detected" (fun () ->
        let st = S.create schema in
        let st, _ = S.insert (Name.v "Person") (S.tuple [ ("Age", V.str "old") ]) st in
        check Alcotest.bool "bad domain" true
          (List.exists
             (function S.Bad_domain _ -> true | _ -> false)
             (S.check st)));
    tc "duplicate key detected across category" (fun () ->
        let st = S.create schema in
        let st, _ = S.insert (Name.v "Person") (S.tuple [ ("Ssn", V.str "1") ]) st in
        let st, _ = S.insert (Name.v "Student") (S.tuple [ ("Ssn", V.str "1") ]) st in
        check Alcotest.bool "dup key" true
          (List.exists
             (function S.Duplicate_key _ -> true | _ -> false)
             (S.check st)));
    tc "cardinality violation detected" (fun () ->
        (* every Student must be advised exactly once; an unadvised
           student violates (1,1) *)
        let st = S.create schema in
        let st, _ = S.insert (Name.v "Student") (S.tuple [ ("Ssn", V.str "1") ]) st in
        check Alcotest.bool "cardinality" true
          (List.exists
             (function S.Cardinality_violation _ -> true | _ -> false)
             (S.check st)));
    tc "dangling participant detected" (fun () ->
        let st = S.create schema in
        let st, p = S.insert (Name.v "Person") (S.tuple [ ("Ssn", V.str "1") ]) st in
        (* p is not a Student, yet used in the Student slot *)
        let st = S.relate (Name.v "Advises") [ p; p ] Name.Map.empty st in
        check Alcotest.bool "dangling" true
          (List.exists
             (function S.Dangling_participant _ -> true | _ -> false)
             (S.check st)));
    tc "violation messages are readable" (fun () ->
        let st = S.create schema in
        let st, _ = S.insert (Name.v "Person") (S.tuple [ ("Age", V.str "x") ]) st in
        match S.check st with
        | v :: _ ->
            check Alcotest.bool "mentions entity" true
              (Util.contains ~needle:"entity" (S.violation_to_string v))
        | [] -> Alcotest.fail "expected a violation");
  ]

let () =
  Alcotest.run "instance"
    [
      ("value", value_tests);
      ("store", store_tests);
      ("integrity", integrity_tests);
    ]
