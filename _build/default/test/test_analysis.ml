(* Tests for the Phase 2 schema-analysis incompatibility reports. *)

open Ecr
open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let a = Qname.Attr.v

let schema name objects relationships =
  Schema.make (Name.v name) ~objects ~relationships

let has_issue pred issues = List.exists pred issues

let tests =
  [
    tc "homonyms: same name, not declared equivalent" (fun () ->
        let ws =
          Workspace.(
            add_schema
              (schema "b"
                 [
                   Object_class.entity
                     ~attrs:[ Attribute.v "Name" "char" ]
                     (Name.v "Thing");
                 ]
                 [])
              (add_schema
                 (schema "a"
                    [
                      Object_class.entity
                        ~attrs:[ Attribute.v "name" "char" ]
                        (Name.v "Object");
                    ]
                    [])
                 empty))
        in
        check Alcotest.bool "reported" true
          (has_issue
             (function Analysis.Homonym _ -> true | _ -> false)
             (Analysis.analyse ws)));
    tc "homonym disappears once declared equivalent" (fun () ->
        let ws =
          Workspace.(
            add_schema
              (schema "b"
                 [
                   Object_class.entity
                     ~attrs:[ Attribute.v "Name" "char" ]
                     (Name.v "Thing");
                 ]
                 [])
              (add_schema
                 (schema "a"
                    [
                      Object_class.entity
                        ~attrs:[ Attribute.v "Name" "char" ]
                        (Name.v "Object");
                    ]
                    [])
                 empty))
          |> Workspace.declare_equivalent (a "a" "Object" "Name") (a "b" "Thing" "Name")
        in
        check Alcotest.bool "clean" false
          (has_issue
             (function Analysis.Homonym _ -> true | _ -> false)
             (Analysis.analyse ws)));
    tc "domain conflict on declared-equivalent attributes" (fun () ->
        let ws =
          Workspace.(
            add_schema
              (schema "b"
                 [
                   Object_class.entity
                     ~attrs:[ Attribute.v "Weight" "date" ]
                     (Name.v "Item");
                 ]
                 [])
              (add_schema
                 (schema "a"
                    [
                      Object_class.entity
                        ~attrs:[ Attribute.v "Weight" "real" ]
                        (Name.v "Product");
                    ]
                    [])
                 empty))
          |> Workspace.declare_equivalent (a "a" "Product" "Weight")
               (a "b" "Item" "Weight")
        in
        check Alcotest.bool "domain conflict" true
          (has_issue
             (function Analysis.Domain_conflict _ -> true | _ -> false)
             (Analysis.analyse ws)));
    tc "key conflict" (fun () ->
        let ws =
          Workspace.(
            add_schema
              (schema "b"
                 [
                   Object_class.entity
                     ~attrs:[ Attribute.v "Code" "char" ]
                     (Name.v "Item");
                 ]
                 [])
              (add_schema
                 (schema "a"
                    [
                      Object_class.entity
                        ~attrs:[ Attribute.v ~key:true "Code" "char" ]
                        (Name.v "Product");
                    ]
                    [])
                 empty))
          |> Workspace.declare_equivalent (a "a" "Product" "Code") (a "b" "Item" "Code")
        in
        check Alcotest.bool "key conflict" true
          (has_issue
             (function Analysis.Key_conflict _ -> true | _ -> false)
             (Analysis.analyse ws)));
    tc "synonym suspect: dissimilar names declared equivalent" (fun () ->
        let ws =
          Workspace.(
            add_schema
              (schema "b"
                 [
                   Object_class.entity
                     ~attrs:[ Attribute.v "Zq" "char" ]
                     (Name.v "Item");
                 ]
                 [])
              (add_schema
                 (schema "a"
                    [
                      Object_class.entity
                        ~attrs:[ Attribute.v "Weight" "char" ]
                        (Name.v "Product");
                    ]
                    [])
                 empty))
          |> Workspace.declare_equivalent (a "a" "Product" "Weight") (a "b" "Item" "Zq")
        in
        check Alcotest.bool "suspect" true
          (has_issue
             (function Analysis.Synonym_suspect _ -> true | _ -> false)
             (Analysis.analyse ws)));
    tc "cardinality conflict on equal relationship sets" (fun () ->
        let mk sname rel c1 c2 =
          schema sname
            [ Object_class.entity (Name.v "A"); Object_class.entity (Name.v "B") ]
            [
              Relationship.binary (Name.v rel) (Name.v "A", c1) (Name.v "B", c2);
            ]
        in
        let ws =
          Workspace.(
            add_schema
              (mk "y" "S" (Cardinality.make 2 (Cardinality.Finite 2)) Cardinality.any)
              (add_schema (mk "x" "R" Cardinality.at_most_one Cardinality.any) empty))
        in
        let ws =
          match
            Workspace.assert_relationship (Qname.v "x" "R") Assertion.Equal
              (Qname.v "y" "S") ws
          with
          | Ok ws -> ws
          | Error _ -> Alcotest.fail "relationship matrices have no seed"
        in
        check Alcotest.bool "cardinality conflict" true
          (has_issue
             (function Analysis.Cardinality_conflict _ -> true | _ -> false)
             (Analysis.analyse ws)));
    tc "construct mismatch: the marriage example" (fun () ->
        let s1 =
          schema "a"
            [
              Object_class.entity
                ~attrs:
                  [
                    Attribute.v "Marriage_date" "date";
                    Attribute.v "Marriage_location" "char";
                  ]
                (Name.v "Marriage");
            ]
            []
        in
        let s2 =
          schema "b"
            [ Object_class.entity ~attrs:[ Attribute.v ~key:true "Name" "char" ] (Name.v "Male");
              Object_class.entity ~attrs:[ Attribute.v ~key:true "Name" "char" ] (Name.v "Female");
            ]
            [
              Relationship.binary
                ~attrs:
                  [
                    Attribute.v "Marriage_date" "date";
                    Attribute.v "Marriage_location" "char";
                  ]
                (Name.v "Married_to")
                (Name.v "Male", Cardinality.at_most_one)
                (Name.v "Female", Cardinality.at_most_one);
            ]
        in
        let ws = Workspace.(add_schema s2 (add_schema s1 empty)) in
        check Alcotest.bool "mismatch found" true
          (has_issue
             (function Analysis.Construct_mismatch _ -> true | _ -> false)
             (Analysis.analyse ws)));
    tc "the paper example analyses without spurious domain issues" (fun () ->
        let ws =
          Workspace.(
            add_schema Workload.Paper.sc2 (add_schema Workload.Paper.sc1 empty))
        in
        let ws =
          List.fold_left
            (fun ws (x, y) -> Workspace.declare_equivalent x y ws)
            ws Workload.Paper.equivalences
        in
        let issues = Analysis.analyse ws in
        check Alcotest.bool "no domain conflicts" false
          (has_issue
             (function Analysis.Domain_conflict _ -> true | _ -> false)
             issues);
        check Alcotest.bool "no key conflicts" false
          (has_issue
             (function Analysis.Key_conflict _ -> true | _ -> false)
             issues));
    tc "issue messages are readable" (fun () ->
        check Alcotest.bool "homonym text" true
          (Util.contains ~needle:"homonym"
             (Analysis.to_string
                (Analysis.Homonym (a "a" "X" "n", a "b" "Y" "n")))));
  ]

let () = Alcotest.run "analysis" [ ("analysis", tests) ]
