(* Tests for object-class integration: the IS-A lattice builder. *)

open Ecr
open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let q = Qname.v
let a = Qname.Attr.v

let build schemas equivalences assertions =
  let eq =
    List.fold_left
      (fun acc s -> Equivalence.register_schema s acc)
      Equivalence.empty schemas
  in
  let eq = List.fold_left (fun acc (x, y) -> Equivalence.declare x y acc) eq equivalences in
  let matrix =
    List.fold_left
      (fun m (l, assertion, r) ->
        match Assertions.add l assertion r m with
        | Ok m -> m
        | Error _ -> Alcotest.fail "unexpected conflict in fixture")
      (Assertions.create schemas) assertions
  in
  Lattice.build ~schemas ~equivalence:eq ~matrix ()

let node_exn lattice n =
  match Lattice.node lattice (Name.v n) with
  | Some node -> node
  | None -> Alcotest.failf "missing node %s" n

let paper_lattice () =
  let eq =
    List.fold_left
      (fun acc (x, y) -> Equivalence.declare x y acc)
      (Equivalence.register_schema Workload.Paper.sc2
         (Equivalence.register_schema Workload.Paper.sc1 Equivalence.empty))
      Workload.Paper.equivalences
  in
  let matrix =
    List.fold_left
      (fun m (l, assertion, r) ->
        match Assertions.add l assertion r m with
        | Ok m -> m
        | Error _ -> Alcotest.fail "paper assertions conflict")
      (Assertions.create [ Workload.Paper.sc1; Workload.Paper.sc2 ])
      Workload.Paper.object_assertions
  in
  Lattice.build ~naming:Workload.Paper.naming
    ~schemas:[ Workload.Paper.sc1; Workload.Paper.sc2 ]
    ~equivalence:eq ~matrix ()

let merging_tests =
  [
    tc "equals merge produces one E_ node" (fun () ->
        let l = paper_lattice () in
        let node = node_exn l "E_Department" in
        check Alcotest.int "two members" 2 (List.length node.Lattice.members);
        check Alcotest.bool "maps both" true
          (Lattice.node_of l (q "sc1" "Department") = Some (Name.v "E_Department")
          && Lattice.node_of l (q "sc2" "Department") = Some (Name.v "E_Department")));
    tc "contains becomes an IS-A edge" (fun () ->
        let l = paper_lattice () in
        let grad = node_exn l "Grad_student" in
        check (Alcotest.list Alcotest.string) "parent" [ "Student" ]
          (List.map Name.to_string grad.Lattice.parents));
    tc "may-be creates a derived node over both" (fun () ->
        let l = paper_lattice () in
        let d = node_exn l "D_Stud_Facu" in
        check Alcotest.int "no members" 0 (List.length d.Lattice.members);
        check (Alcotest.slist Alcotest.string String.compare) "children"
          [ "Student"; "Faculty" ]
          (List.map Name.to_string d.Lattice.derived_children);
        check (Alcotest.list Alcotest.string) "student parent" [ "D_Stud_Facu" ]
          (List.map Name.to_string (node_exn l "Student").Lattice.parents));
    tc "entity/category split follows parents" (fun () ->
        let l = paper_lattice () in
        check (Alcotest.slist Alcotest.string String.compare) "entities"
          [ "E_Department"; "D_Stud_Facu" ]
          (List.map (fun n -> Name.to_string n.Lattice.id) (Lattice.entity_nodes l));
        check (Alcotest.slist Alcotest.string String.compare) "categories"
          [ "Student"; "Faculty"; "Grad_student" ]
          (List.map (fun n -> Name.to_string n.Lattice.id) (Lattice.category_nodes l)));
  ]

let attribute_tests =
  [
    tc "three-way Name class lands on the derived node" (fun () ->
        let l = paper_lattice () in
        let d = node_exn l "D_Stud_Facu" in
        match d.Lattice.attributes with
        | [ pa ] ->
            check Alcotest.string "name" "D_Name"
              (Name.to_string pa.Lattice.attr.Attribute.name);
            check Alcotest.int "3 components" 3 (List.length pa.Lattice.components);
            check Alcotest.bool "key" true pa.Lattice.attr.Attribute.key
        | attrs -> Alcotest.failf "expected one attribute, got %d" (List.length attrs));
    tc "two-way GPA class lands on Student (the LCA)" (fun () ->
        let l = paper_lattice () in
        let student = node_exn l "Student" in
        let names =
          List.map
            (fun pa -> Name.to_string pa.Lattice.attr.Attribute.name)
            student.Lattice.attributes
        in
        check (Alcotest.list Alcotest.string) "only D_GPA" [ "D_GPA" ] names;
        check Alcotest.int "2 components" 2
          (List.length (List.hd student.Lattice.attributes).Lattice.components));
    tc "unmatched attributes stay local" (fun () ->
        let l = paper_lattice () in
        let grad = node_exn l "Grad_student" in
        check (Alcotest.list Alcotest.string) "support kept" [ "Support_type" ]
          (List.map
             (fun pa -> Name.to_string pa.Lattice.attr.Attribute.name)
             grad.Lattice.attributes));
    tc "all_attributes inherits through the lattice" (fun () ->
        let l = paper_lattice () in
        let attrs = Lattice.all_attributes l (Name.v "Grad_student") in
        check (Alcotest.slist Alcotest.string String.compare) "full set"
          [ "Support_type"; "D_GPA"; "D_Name" ]
          (List.map (fun pa -> Name.to_string pa.Lattice.attr.Attribute.name) attrs));
    tc "merged domains join" (fun () ->
        let s1 =
          Schema.make (Name.v "x")
            ~objects:
              [ Object_class.entity ~attrs:[ Attribute.v "n" "int" ] (Name.v "A") ]
            ~relationships:[]
        and s2 =
          Schema.make (Name.v "y")
            ~objects:
              [ Object_class.entity ~attrs:[ Attribute.v "n" "real" ] (Name.v "B") ]
            ~relationships:[]
        in
        let l =
          build [ s1; s2 ]
            [ (a "x" "A" "n", a "y" "B" "n") ]
            [ (q "x" "A", Assertion.Equal, q "y" "B") ]
        in
        let node = node_exn l "E_A_B" in
        match node.Lattice.attributes with
        | [ pa ] ->
            check Alcotest.bool "joined to real" true
              (Domain.equal pa.Lattice.attr.Attribute.domain Domain.Real)
        | _ -> Alcotest.fail "expected one merged attribute");
    tc "incompatible merged domains warn" (fun () ->
        let s1 =
          Schema.make (Name.v "x")
            ~objects:
              [ Object_class.entity ~attrs:[ Attribute.v "n" "date" ] (Name.v "A") ]
            ~relationships:[]
        and s2 =
          Schema.make (Name.v "y")
            ~objects:
              [ Object_class.entity ~attrs:[ Attribute.v "n" "bool" ] (Name.v "B") ]
            ~relationships:[]
        in
        let l =
          build [ s1; s2 ]
            [ (a "x" "A" "n", a "y" "B" "n") ]
            [ (q "x" "A", Assertion.Equal, q "y" "B") ]
        in
        check Alcotest.bool "warned" true (l.Lattice.warnings <> []));
    tc "equivalence across unrelated classes splits with warning" (fun () ->
        let s1 =
          Schema.make (Name.v "x")
            ~objects:
              [ Object_class.entity ~attrs:[ Attribute.v "n" "char" ] (Name.v "A") ]
            ~relationships:[]
        and s2 =
          Schema.make (Name.v "y")
            ~objects:
              [ Object_class.entity ~attrs:[ Attribute.v "n" "char" ] (Name.v "B") ]
            ~relationships:[]
        in
        let l = build [ s1; s2 ] [ (a "x" "A" "n", a "y" "B" "n") ] [] in
        check Alcotest.bool "warned" true (l.Lattice.warnings <> []);
        let na = node_exn l "A" and nb = node_exn l "B" in
        check Alcotest.int "A keeps its attr" 1 (List.length na.Lattice.attributes);
        check Alcotest.int "B keeps its attr" 1 (List.length nb.Lattice.attributes));
  ]

let structure_tests =
  [
    tc "transitive reduction removes implied edges" (fun () ->
        let mk n cls =
          Schema.make (Name.v n)
            ~objects:[ Object_class.entity (Name.v cls) ]
            ~relationships:[]
        in
        let l =
          build
            [ mk "x" "A"; mk "y" "B"; mk "z" "C" ]
            []
            [
              (q "x" "A", Assertion.Contained_in, q "y" "B");
              (q "y" "B", Assertion.Contained_in, q "z" "C");
              (q "x" "A", Assertion.Contained_in, q "z" "C");
            ]
        in
        check (Alcotest.list Alcotest.string) "single parent" [ "B" ]
          (List.map Name.to_string (node_exn l "A").Lattice.parents));
    tc "pass-through name collision resolved by qualification" (fun () ->
        let mk n =
          Schema.make (Name.v n)
            ~objects:[ Object_class.entity (Name.v "Department") ]
            ~relationships:[]
        in
        let l = build [ mk "x"; mk "y" ] [] [] in
        check Alcotest.bool "x keeps plain name" true
          (Lattice.node_of l (q "x" "Department") = Some (Name.v "Department"));
        check Alcotest.bool "y qualified" true
          (Lattice.node_of l (q "y" "Department") = Some (Name.v "y_Department")));
    tc "disjoint-integrable also creates a derived node" (fun () ->
        let r = Workload.Paper.integrate_mini Workload.Paper.fig2d in
        check Alcotest.bool "derived exists" true
          (Schema.mem (Name.v "D_Secr_Engi") r.Result.schema));
    tc "intra-schema structure is preserved" (fun () ->
        let l = build [ Workload.Paper.sc4 ] [] [] in
        check (Alcotest.list Alcotest.string) "category edge kept" [ "Student" ]
          (List.map Name.to_string (node_exn l "Grad_student").Lattice.parents));
    tc "related finds the more general node" (fun () ->
        let l = paper_lattice () in
        check Alcotest.bool "student/grad -> student" true
          (Lattice.related l (Name.v "Student") (Name.v "Grad_student")
          = Some (Name.v "Student"));
        check Alcotest.bool "unrelated" true
          (Lattice.related l (Name.v "E_Department") (Name.v "Faculty") = None);
        check Alcotest.bool "self" true
          (Lattice.related l (Name.v "Faculty") (Name.v "Faculty")
          = Some (Name.v "Faculty")));
    tc "ancestors in the lattice" (fun () ->
        let l = paper_lattice () in
        check (Alcotest.slist Alcotest.string String.compare) "grad ancestors"
          [ "Student"; "D_Stud_Facu" ]
          (List.map Name.to_string (Lattice.ancestors l (Name.v "Grad_student"))));
  ]

let naming_tests =
  [
    tc "derived names abbreviate to four characters" (fun () ->
        check Alcotest.string "D_Stud_Facu" "D_Stud_Facu"
          (Name.to_string
             (Naming.derived_name Naming.default (q "sc1" "Student") (q "sc2" "Faculty"))));
    tc "equals with one shared name" (fun () ->
        check Alcotest.string "E_Department" "E_Department"
          (Name.to_string
             (Naming.equivalent_name Naming.default
                [ q "sc1" "Department"; q "sc2" "Department" ])));
    tc "equals with different names abbreviates" (fun () ->
        check Alcotest.string "E_Majo_Majo" "E_Majo_Majo"
          (Name.to_string
             (Naming.equivalent_name Naming.default
                [ q "sc1" "Majors"; q "sc2" "Major_in" ])));
    tc "override wins" (fun () ->
        let naming =
          Naming.with_override (q "sc1" "Majors") (q "sc2" "Major_in") "E_Stud_Majo"
            Naming.default
        in
        check Alcotest.string "pinned" "E_Stud_Majo"
          (Name.to_string
             (Naming.equivalent_name naming [ q "sc1" "Majors"; q "sc2" "Major_in" ])));
    tc "uniquify appends counters" (fun () ->
        let used = Name.Set.of_list [ Name.v "X"; Name.v "X_2" ] in
        check Alcotest.string "X_3" "X_3"
          (Name.to_string (Naming.uniquify used (Name.v "X"))));
    tc "merged attribute name" (fun () ->
        check Alcotest.string "D_Name" "D_Name"
          (Name.to_string (Naming.merged_attribute_name (Name.v "Name"))));
  ]

let () =
  Alcotest.run "lattice"
    [
      ("merging", merging_tests);
      ("attributes", attribute_tests);
      ("structure", structure_tests);
      ("naming", naming_tests);
    ]
