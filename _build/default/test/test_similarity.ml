(* Tests for the OCS matrix and the resemblance-function ordering —
   including the exact numbers printed on Screen 8 of the paper. *)

open Ecr
open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let close = Alcotest.float 1e-6

let paper_eq =
  List.fold_left
    (fun eq (x, y) -> Equivalence.declare x y eq)
    (Equivalence.register_schema Workload.Paper.sc2
       (Equivalence.register_schema Workload.Paper.sc1 Equivalence.empty))
    Workload.Paper.equivalences

let sc1 = Workload.Paper.sc1
let sc2 = Workload.Paper.sc2
let obj s n = Option.get (Schema.find_object (Name.v n) s)

let ratio_tests =
  [
    tc "Screen 8: Department-Department is 0.5000" (fun () ->
        check close "ratio" 0.5
          (Similarity.attribute_ratio (sc1, obj sc1 "Department")
             (sc2, obj sc2 "Department") paper_eq));
    tc "Screen 8: Student-Grad_student is 0.5000" (fun () ->
        check close "ratio" 0.5
          (Similarity.attribute_ratio (sc1, obj sc1 "Student")
             (sc2, obj sc2 "Grad_student") paper_eq));
    tc "Screen 8: Student-Faculty is 0.3333" (fun () ->
        check close "ratio" (1.0 /. 3.0)
          (Similarity.attribute_ratio (sc1, obj sc1 "Student")
             (sc2, obj sc2 "Faculty") paper_eq));
    tc "unrelated pairs are 0" (fun () ->
        check close "ratio" 0.0
          (Similarity.attribute_ratio (sc1, obj sc1 "Department")
             (sc2, obj sc2 "Faculty") paper_eq));
    tc "0.5 means full coverage of the smaller class" (fun () ->
        (* the paper's own reading of the ratio *)
        let r =
          Similarity.attribute_ratio (sc1, obj sc1 "Student")
            (sc2, obj sc2 "Grad_student") paper_eq
        in
        check Alcotest.bool "never above 0.5" true (r <= 0.5));
    tc "relationship ratio" (fun () ->
        let majors = Option.get (Schema.find_relationship (Name.v "Majors") sc1) in
        let major_in = Option.get (Schema.find_relationship (Name.v "Major_in") sc2) in
        check close "since matches" 0.5
          (Similarity.relationship_ratio (sc1, majors) (sc2, major_in) paper_eq));
  ]

let ranking_tests =
  [
    tc "Screen 8 order reproduced" (fun () ->
        let ranked = Similarity.ranked_object_pairs sc1 sc2 paper_eq in
        let names =
          List.map
            (fun rk ->
              (Qname.to_string rk.Similarity.left, Qname.to_string rk.Similarity.right))
            (Similarity.top 3 ranked)
        in
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "order"
          [
            ("sc1.Department", "sc2.Department");
            ("sc1.Student", "sc2.Grad_student");
            ("sc1.Student", "sc2.Faculty");
          ]
          names);
    tc "every cross pair is listed" (fun () ->
        check Alcotest.int "2x3" 6
          (List.length (Similarity.ranked_object_pairs sc1 sc2 paper_eq)));
    tc "ratios never increase down the list" (fun () ->
        let ranked = Similarity.ranked_object_pairs sc1 sc2 paper_eq in
        let rec monotone = function
          | a :: (b :: _ as rest) ->
              a.Similarity.ratio >= b.Similarity.ratio && monotone rest
          | _ -> true
        in
        check Alcotest.bool "monotone" true (monotone ranked));
    tc "shared counts populate the OCS entries" (fun () ->
        let ranked = Similarity.ranked_object_pairs sc1 sc2 paper_eq in
        let find l r =
          List.find
            (fun rk ->
              Qname.to_string rk.Similarity.left = l
              && Qname.to_string rk.Similarity.right = r)
            ranked
        in
        check Alcotest.int "student-grad shares 2" 2
          (find "sc1.Student" "sc2.Grad_student").Similarity.shared;
        check Alcotest.int "dept-dept shares 1" 1
          (find "sc1.Department" "sc2.Department").Similarity.shared);
    tc "relationship ranking" (fun () ->
        let ranked = Similarity.ranked_relationship_pairs sc1 sc2 paper_eq in
        check Alcotest.int "1x2" 2 (List.length ranked);
        match ranked with
        | first :: _ ->
            check Alcotest.string "majors pair first" "sc2.Major_in"
              (Qname.to_string first.Similarity.right)
        | [] -> Alcotest.fail "empty ranking");
    tc "top truncates" (fun () ->
        check Alcotest.int "top 2" 2
          (List.length (Similarity.top 2 (Similarity.ranked_object_pairs sc1 sc2 paper_eq))));
    tc "without equivalences everything ties at 0" (fun () ->
        let eq =
          Equivalence.register_schema sc2 (Equivalence.register_schema sc1 Equivalence.empty)
        in
        List.iter
          (fun rk -> check close "zero" 0.0 rk.Similarity.ratio)
          (Similarity.ranked_object_pairs sc1 sc2 eq));
    tc "heuristic puts true pairs first on generated workloads" (fun () ->
        let w =
          Workload.Generator.generate
            { Workload.Generator.default_params with seed = 7 }
        in
        match w.Workload.Generator.schemas with
        | [ s1; s2 ] ->
            let eq =
              (* perfect phase-2 answers from the oracle *)
              Integrate.Protocol.collect_equivalences
                { Integrate.Protocol.defaults with exhaustive_attribute_pairs = true }
                s1 s2 w.Workload.Generator.oracle Equivalence.empty
            in
            let ranked = Similarity.ranked_object_pairs s1 s2 eq in
            let k = List.length w.Workload.Generator.true_pairs in
            let topk = Similarity.top k ranked in
            let hits =
              List.length
                (List.filter
                   (fun rk ->
                     List.exists
                       (fun (x, y) ->
                         Qname.equal x rk.Similarity.left
                         && Qname.equal y rk.Similarity.right)
                       w.Workload.Generator.true_pairs)
                   topk)
            in
            check Alcotest.bool "precision@k above half" true
              (k = 0 || float_of_int hits /. float_of_int k > 0.5)
        | _ -> Alcotest.fail "expected two schemas");
  ]

let () =
  Alcotest.run "similarity"
    [ ("ratios", ratio_tests); ("ranking", ranking_tests) ]
