(* Tests for the assertion matrix: seeding, derivation (transitive
   composition) and conflict detection. *)

open Ecr
open Integrate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let q = Qname.v

let assertion_opt =
  Alcotest.option (Alcotest.testable (Fmt.of_to_string Assertion.to_string) ( = ))

(* One schema with a category chain, one flat schema. *)
let s_people =
  Schema.make (Name.v "p")
    ~objects:
      [
        Object_class.entity (Name.v "Person");
        Object_class.category ~parents:[ Name.v "Person" ] (Name.v "Employee");
        Object_class.category ~parents:[ Name.v "Employee" ] (Name.v "Manager");
        Object_class.entity (Name.v "Building");
      ]
    ~relationships:[]

let s_other =
  Schema.make (Name.v "o")
    ~objects:
      [
        Object_class.entity (Name.v "Worker");
        Object_class.entity (Name.v "Site");
      ]
    ~relationships:[]

let seeding_tests =
  [
    tc "category edges seed contained-in" (fun () ->
        let m = Assertions.create [ s_people ] in
        check assertion_opt "Employee in Person" (Some Assertion.Contained_in)
          (Assertions.assertion_between m (q "p" "Employee") (q "p" "Person"));
        check assertion_opt "converse orientation" (Some Assertion.Contains)
          (Assertions.assertion_between m (q "p" "Person") (q "p" "Employee")));
    tc "chain is closed transitively at creation" (fun () ->
        let m = Assertions.create [ s_people ] in
        check assertion_opt "Manager in Person" (Some Assertion.Contained_in)
          (Assertions.assertion_between m (q "p" "Manager") (q "p" "Person")));
    tc "entity sets of one schema are disjoint" (fun () ->
        let m = Assertions.create [ s_people ] in
        check assertion_opt "Person # Building"
          (Some Assertion.Disjoint_nonintegrable)
          (Assertions.assertion_between m (q "p" "Person") (q "p" "Building"));
        (* and categories inherit the disjointness *)
        check assertion_opt "Manager # Building"
          (Some Assertion.Disjoint_nonintegrable)
          (Assertions.assertion_between m (q "p" "Manager") (q "p" "Building")));
    tc "cross-schema pairs start unknown" (fun () ->
        let m = Assertions.create [ s_people; s_other ] in
        check assertion_opt "unknown" None
          (Assertions.assertion_between m (q "p" "Person") (q "o" "Worker"));
        check Alcotest.bool "rel all" true
          (Rel.equal Rel.all (Assertions.relation m (q "p" "Person") (q "o" "Worker"))));
  ]

let ok = function
  | Ok m -> m
  | Error _ -> Alcotest.fail "unexpected conflict"

let derivation_tests =
  [
    tc "the paper's transitive example" (fun () ->
        (* Worker subset of Employee and Employee subset of Person ==>
           Worker subset of Person. *)
        let m = Assertions.create [ s_people; s_other ] in
        let m = ok (Assertions.add (q "o" "Worker") Assertion.Contained_in (q "p" "Employee") m) in
        check assertion_opt "derived" (Some Assertion.Contained_in)
          (Assertions.assertion_between m (q "o" "Worker") (q "p" "Person"));
        check Alcotest.bool "marked derived" true
          (match Assertions.source_between m (q "o" "Worker") (q "p" "Person") with
          | Some (Assertions.Derived _) -> true
          | _ -> false));
    tc "derivation through equals" (fun () ->
        let m = Assertions.create [ s_people; s_other ] in
        let m = ok (Assertions.add (q "o" "Worker") Assertion.Equal (q "p" "Employee") m) in
        check assertion_opt "worker in person" (Some Assertion.Contained_in)
          (Assertions.assertion_between m (q "o" "Worker") (q "p" "Person"));
        check assertion_opt "worker contains manager" (Some Assertion.Contains)
          (Assertions.assertion_between m (q "o" "Worker") (q "p" "Manager")));
    tc "disjointness propagates down the hierarchy" (fun () ->
        let m = Assertions.create [ s_people; s_other ] in
        let m = ok (Assertions.add (q "o" "Site") Assertion.Equal (q "p" "Building") m) in
        check assertion_opt "site # manager" (Some Assertion.Disjoint_nonintegrable)
          (Assertions.assertion_between m (q "o" "Site") (q "p" "Manager")));
    tc "derived_assertions and counts" (fun () ->
        let m = Assertions.create [ s_people; s_other ] in
        let m = ok (Assertions.add (q "o" "Worker") Assertion.Equal (q "p" "Employee") m) in
        check Alcotest.int "asserted" 1 (Assertions.asserted_count m);
        check Alcotest.bool "derived some" true (Assertions.derived_count m > 0);
        check Alcotest.bool "derived list nonempty" true
          (Assertions.derived_assertions m <> []));
    tc "explain produces asserted leaves" (fun () ->
        let m = Assertions.create [ s_people; s_other ] in
        let m = ok (Assertions.add (q "o" "Worker") Assertion.Contained_in (q "p" "Employee") m) in
        let basis = Assertions.explain m (q "o" "Worker") (q "p" "Person") in
        check Alcotest.bool "has the user assertion" true
          (List.exists
             (fun (l, r, _) ->
               (Qname.equal l (q "o" "Worker") && Qname.equal r (q "p" "Employee"))
               || (Qname.equal r (q "o" "Worker") && Qname.equal l (q "p" "Employee")))
             basis);
        check Alcotest.bool "has the structural edge" true
          (List.exists
             (fun (l, r, _) ->
               (Qname.equal l (q "p" "Employee") && Qname.equal r (q "p" "Person"))
               || (Qname.equal r (q "p" "Employee") && Qname.equal l (q "p" "Person")))
             basis));
    tc "adding in flipped orientation stores the converse" (fun () ->
        let m = Assertions.create [ s_people; s_other ] in
        let m = ok (Assertions.add (q "p" "Employee") Assertion.Contains (q "o" "Worker") m) in
        check assertion_opt "reads back" (Some Assertion.Contained_in)
          (Assertions.assertion_between m (q "o" "Worker") (q "p" "Employee")));
    tc "redundant re-assertion is a no-op" (fun () ->
        let m = Assertions.create [ s_people ] in
        let m' =
          ok (Assertions.add (q "p" "Employee") Assertion.Contained_in (q "p" "Person") m)
        in
        check Alcotest.int "no new asserted cell" (Assertions.asserted_count m)
          (Assertions.asserted_count m'));
  ]

let conflict_tests =
  [
    tc "the paper's introduction example" (fun () ->
        (* If Employee equals Person and Person equals Worker, then
           Worker cannot be a (proper) subset of Employee. *)
        let s1 =
          Schema.make (Name.v "a")
            ~objects:[ Object_class.entity (Name.v "Employee") ]
            ~relationships:[]
        and s2 =
          Schema.make (Name.v "b")
            ~objects:[ Object_class.entity (Name.v "Person") ]
            ~relationships:[]
        and s3 =
          Schema.make (Name.v "c")
            ~objects:[ Object_class.entity (Name.v "Worker") ]
            ~relationships:[]
        in
        let m = Assertions.create [ s1; s2; s3 ] in
        let m = ok (Assertions.add (q "a" "Employee") Assertion.Equal (q "b" "Person") m) in
        let m = ok (Assertions.add (q "b" "Person") Assertion.Equal (q "c" "Worker") m) in
        match Assertions.add (q "c" "Worker") Assertion.Contained_in (q "a" "Employee") m with
        | Ok _ -> Alcotest.fail "conflict missed"
        | Error c ->
            check Alcotest.bool "attempted recorded" true
              (c.Assertions.attempted = Some Assertion.Contained_in);
            check Alcotest.bool "basis mentions both equalities" true
              (List.length c.Assertions.basis >= 2));
    tc "the paper's Screen 9 scenario" (fun () ->
        let m = Assertions.create [ Workload.Paper.sc3; Workload.Paper.sc4 ] in
        let m =
          ok
            (Assertions.add (q "sc3" "Instructor") Assertion.Contained_in
               (q "sc4" "Grad_student") m)
        in
        match
          Assertions.add (q "sc3" "Instructor") Assertion.Disjoint_nonintegrable
            (q "sc4" "Student") m
        with
        | Ok _ -> Alcotest.fail "conflict missed"
        | Error c ->
            check Alcotest.bool "current is contained-in" true
              (Rel.equal c.Assertions.current (Rel.of_basic Rel.Lt)));
    tc "conflict leaves the matrix unchanged" (fun () ->
        let m = Assertions.create [ Workload.Paper.sc3; Workload.Paper.sc4 ] in
        let m =
          ok
            (Assertions.add (q "sc3" "Instructor") Assertion.Contained_in
               (q "sc4" "Grad_student") m)
        in
        (match
           Assertions.add (q "sc3" "Instructor") Assertion.Disjoint_nonintegrable
             (q "sc4" "Student") m
         with
        | Ok _ -> Alcotest.fail "conflict missed"
        | Error _ -> ());
        (* the original matrix still answers as before *)
        check assertion_opt "still contained-in" (Some Assertion.Contained_in)
          (Assertions.assertion_between m (q "sc3" "Instructor") (q "sc4" "Student")));
    tc "distant contradiction is caught by propagation" (fun () ->
        (* a = b, c = d consistent; then b subset c and d subset a close a
           cycle that forces everything equal — consistent; but then
           asserting b # d must fail. *)
        let mk n cls =
          Schema.make (Name.v n)
            ~objects:[ Object_class.entity (Name.v cls) ]
            ~relationships:[]
        in
        let m =
          Assertions.create [ mk "w" "A"; mk "x" "B"; mk "y" "C"; mk "z" "D" ]
        in
        let m = ok (Assertions.add (q "w" "A") Assertion.Equal (q "x" "B") m) in
        let m = ok (Assertions.add (q "y" "C") Assertion.Equal (q "z" "D") m) in
        let m = ok (Assertions.add (q "x" "B") Assertion.Contained_in (q "y" "C") m) in
        match Assertions.add (q "z" "D") Assertion.Disjoint_nonintegrable (q "w" "A") m with
        | Ok _ -> Alcotest.fail "conflict missed"
        | Error _ -> ());
  ]

let integration_edge_tests =
  [
    tc "nonintegrable disjoint excluded from edges" (fun () ->
        let m = Assertions.create [ s_people; s_other ] in
        let m =
          ok
            (Assertions.add (q "o" "Worker") Assertion.Disjoint_nonintegrable
               (q "p" "Person") m)
        in
        check Alcotest.bool "no cross edge" true
          (not
             (List.exists
                (fun (a, b, _) -> Qname.Pair.mem (q "o" "Worker") (Qname.Pair.make a b))
                (Assertions.integration_edges m))));
    tc "integrable disjoint included with its flag" (fun () ->
        let m = Assertions.create [ s_people; s_other ] in
        let m =
          ok
            (Assertions.add (q "o" "Worker") Assertion.Disjoint_integrable
               (q "p" "Building") m)
        in
        check Alcotest.bool "edge present" true
          (List.exists
             (fun (_, _, a) -> a = Assertion.Disjoint_integrable)
             (Assertions.integration_edges m)));
    tc "relationship matrices carry no structural seed" (fun () ->
        let m = Assertions.create_for_relationships [ Workload.Paper.sc1; Workload.Paper.sc2 ] in
        check Alcotest.int "no cells" 0 (List.length (Assertions.constrained_pairs m));
        check Alcotest.int "nodes are the relationship sets" 3
          (List.length (Assertions.nodes m)));
  ]

let () =
  Alcotest.run "assertions"
    [
      ("seeding", seeding_tests);
      ("derivation", derivation_tests);
      ("conflicts", conflict_tests);
      ("integration-edges", integration_edge_tests);
    ]
