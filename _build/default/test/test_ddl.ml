(* Tests for the ECR data description language (lexer, parser, printer). *)

open Ecr

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let sample =
  {|
-- a comment
schema sc1 {
  entity Student {
    Name : char key;
    GPA  : real;
  }
  entity Department {
    Name : char key;
  }
  category Grad of Student {
    Support : enum(RA, TA, fellowship);
  }
  relationship Majors (Student (1,1), Department (0,N)) {
    Since : date;
  }
  relationship Mentors (boss: Student (0,N), minion: Student (0,1));
}
|}

let parsed () = Ddl.Parser.schema_of_string sample

let lexer_tests =
  [
    tc "tokenizes keywords and idents" (fun () ->
        let tokens = Ddl.Lexer.tokenize "schema x { entity Y; }" in
        check Alcotest.int "count incl. eof" 8 (List.length tokens));
    tc "line comments are skipped" (fun () ->
        let tokens = Ddl.Lexer.tokenize "-- hi\nschema" in
        check Alcotest.int "one + eof" 2 (List.length tokens);
        match tokens with
        | { Ddl.Lexer.token = Ddl.Lexer.Kw_schema; line; _ } :: _ ->
            check Alcotest.int "on line 2" 2 line
        | _ -> Alcotest.fail "expected schema keyword");
    tc "illegal character reports position" (fun () ->
        match Ddl.Lexer.tokenize "schema $x" with
        | exception Ddl.Lexer.Error (_, 1, 8) -> ()
        | exception Ddl.Lexer.Error (_, l, c) ->
            Alcotest.failf "wrong position %d:%d" l c
        | _ -> Alcotest.fail "expected lexical error");
    tc "integers" (fun () ->
        match Ddl.Lexer.tokenize "123" with
        | [ { Ddl.Lexer.token = Ddl.Lexer.Int 123; _ }; _ ] -> ()
        | _ -> Alcotest.fail "expected integer token");
  ]

let parser_tests =
  [
    tc "parses the sample schema" (fun () ->
        let s = parsed () in
        check Alcotest.int "structures" 5 (Schema.size s);
        check Alcotest.int "entities" 2 (List.length (Schema.entities s));
        check Alcotest.int "categories" 1 (List.length (Schema.categories s));
        check Alcotest.int "relationships" 2 (List.length (Schema.relationships s)));
    tc "keys and domains land" (fun () ->
        let s = parsed () in
        match Schema.find_object (Name.v "Student") s with
        | Some oc -> (
            match Attribute.find (Name.v "Name") oc.Object_class.attributes with
            | Some a ->
                check Alcotest.bool "key" true a.Attribute.key;
                check Alcotest.bool "char" true (Domain.equal a.Attribute.domain Domain.Char_string)
            | None -> Alcotest.fail "missing Name")
        | None -> Alcotest.fail "missing Student");
    tc "enum domain parsed" (fun () ->
        let s = parsed () in
        match Schema.find_object (Name.v "Grad") s with
        | Some oc -> (
            match Attribute.find (Name.v "Support") oc.Object_class.attributes with
            | Some a ->
                check Alcotest.string "enum" "enum(RA,TA,fellowship)"
                  (Domain.to_string a.Attribute.domain)
            | None -> Alcotest.fail "missing Support")
        | None -> Alcotest.fail "missing Grad");
    tc "cardinalities parsed" (fun () ->
        let s = parsed () in
        match Schema.find_relationship (Name.v "Majors") s with
        | Some r -> (
            match Relationship.participant_for (Name.v "Student") r with
            | Some p ->
                check Alcotest.string "(1,1)" "(1,1)"
                  (Cardinality.to_string p.Relationship.card)
            | None -> Alcotest.fail "no Student participant")
        | None -> Alcotest.fail "missing Majors");
    tc "roles parsed" (fun () ->
        let s = parsed () in
        match Schema.find_relationship (Name.v "Mentors") s with
        | Some r ->
            check
              (Alcotest.list (Alcotest.option Alcotest.string))
              "roles"
              [ Some "boss"; Some "minion" ]
              (List.map (Option.map Name.to_string) (Relationship.roles r))
        | None -> Alcotest.fail "missing Mentors");
    tc "empty body via semicolon" (fun () ->
        let s = Ddl.Parser.schema_of_string "schema s { entity A; }" in
        check Alcotest.int "one entity" 1 (List.length (Schema.entities s)));
    tc "multiple schemas in one file" (fun () ->
        let ss =
          Ddl.Parser.schemas_of_string "schema a { entity X; } schema b { entity Y; }"
        in
        check Alcotest.int "two" 2 (List.length ss));
    tc "syntax error carries position" (fun () ->
        match Ddl.Parser.schema_of_string "schema s { entity }" with
        | exception Ddl.Parser.Error (_, 1, 19) -> ()
        | exception Ddl.Parser.Error (msg, l, c) ->
            Alcotest.failf "wrong position %d:%d (%s)" l c msg
        | _ -> Alcotest.fail "expected syntax error");
    tc "missing semicolon reported" (fun () ->
        match Ddl.Parser.schema_of_string "schema s { entity A { x : int } }" with
        | exception Ddl.Parser.Error (msg, _, _) ->
            check Alcotest.bool "mentions ';'" true (Util.contains ~needle:"';'" msg)
        | _ -> Alcotest.fail "expected error");
    tc "schema_of_string requires exactly one" (fun () ->
        match Ddl.Parser.schema_of_string "" with
        | exception Ddl.Parser.Error _ -> ()
        | _ -> Alcotest.fail "expected error");
    tc "duplicate structures rejected at build" (fun () ->
        match Ddl.Parser.schema_of_string "schema s { entity A; entity A; }" with
        | exception Ddl.Parser.Error _ -> ()
        | _ -> Alcotest.fail "expected duplicate error");
  ]

let schema_eq = Alcotest.testable (Fmt.of_to_string Ddl.Printer.to_string) Schema.equal

let roundtrip s () =
  let printed = Ddl.Printer.to_string s in
  let reparsed = Ddl.Parser.schema_of_string printed in
  check schema_eq "round trip" s reparsed

let printer_tests =
  [
    tc "round-trip: sample" (fun () -> roundtrip (parsed ()) ());
    tc "round-trip: paper sc1" (roundtrip Workload.Paper.sc1);
    tc "round-trip: paper sc2" (roundtrip Workload.Paper.sc2);
    tc "round-trip: paper sc4 (category)" (roundtrip Workload.Paper.sc4);
    tc "round-trip: integrated schema" (fun () ->
        let r = Workload.Paper.integrate_sc1_sc2 () in
        roundtrip r.Integrate.Result.schema ());
    tc "round-trip: generated workload schemas" (fun () ->
        let w = Workload.Generator.generate Workload.Generator.default_params in
        List.iter (fun s -> roundtrip s ()) w.Workload.Generator.schemas);
    tc "printer emits parseable multi-schema files" (fun () ->
        let text =
          Ddl.Printer.schemas_to_string [ Workload.Paper.sc1; Workload.Paper.sc2 ]
        in
        check Alcotest.int "two back" 2
          (List.length (Ddl.Parser.schemas_of_string text)));
    tc "files round-trip through disk" (fun () ->
        let path = Filename.temp_file "sit" ".ecr" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Ddl.Printer.save path [ Workload.Paper.sc1 ];
            match Ddl.Parser.schemas_of_file path with
            | [ s ] -> check schema_eq "disk round trip" Workload.Paper.sc1 s
            | _ -> Alcotest.fail "expected one schema"));
  ]

let () =
  Alcotest.run "ddl"
    [ ("lexer", lexer_tests); ("parser", parser_tests); ("printer", printer_tests) ]
