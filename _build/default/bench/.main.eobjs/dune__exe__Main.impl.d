bench/main.ml: Analyze Array Bechamel Benchmark Ecr Experiments Hashtbl Instance Int Integrate Lazy List Measure Printf Query Staged String Sys Test Time Toolkit Workload
