bench/main.mli:
